"""Generator-backed workloads: the streaming side of the million-job core.

A :class:`JobStream` wraps any iterator of :class:`~repro.jobs.job.Job`
objects **sorted by submit time** and carries the one piece of metadata
the simulator needs to consume it lazily: the *notice horizon* — an
upper bound on ``submit_time - notice_time`` over the whole stream.
Advance notices fire *before* their job's submission, so a simulator
pulling jobs in submit order must admit every job whose submission lies
within the horizon of the next event batch; with the bound in hand it
can keep the admitted-but-not-finished window tight instead of
materializing the trace.

Producers that know their own bound attach it:

* :meth:`repro.workload.theta.ThetaWorkloadGenerator.iter_jobs` uses
  ``spec.notice_lead_range_s[1] + spec.late_window_s`` (a LATE job's
  notice precedes its actual arrival by at most lead + late window);
* :func:`repro.workload.swf.stream_swf` uses ``0`` (SWF jobs carry no
  notices);
* a bare generator handed straight to ``Simulation`` is wrapped with
  :data:`DEFAULT_NOTICE_HORIZON_S`, generous enough for every notice
  mix this repo generates.

The bound only affects *memory* (how far ahead the simulator admits),
never decisions: admission just schedules the same submit/notice events
``Simulation.__init__`` would have pushed up front.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.jobs.job import Job

#: fallback ``submit_time - notice_time`` bound for bare iterators:
#: 2 h covers the paper's 15-30 min leads plus the 30 min late window
#: with slack to spare.
DEFAULT_NOTICE_HORIZON_S = 7200.0


class JobStream:
    """An iterator of submit-time-ordered jobs plus its notice horizon.

    Parameters
    ----------
    jobs:
        Any iterable of jobs sorted by ``submit_time`` (ties in any
        order).  The simulator validates monotonicity as it pulls.
    notice_horizon_s:
        Upper bound on ``submit_time - notice_time`` across the stream.
        Jobs without notices contribute 0; pass 0.0 for notice-free
        workloads to keep the admission window minimal.
    """

    __slots__ = ("_it", "notice_horizon_s")

    def __init__(
        self,
        jobs: Iterable[Job],
        notice_horizon_s: float = DEFAULT_NOTICE_HORIZON_S,
    ) -> None:
        if notice_horizon_s < 0:
            raise ValueError("notice_horizon_s must be >= 0")
        self._it: Iterator[Job] = iter(jobs)
        self.notice_horizon_s = float(notice_horizon_s)

    def __iter__(self) -> Iterator[Job]:
        return self._it

    def __next__(self) -> Job:
        return next(self._it)


def as_stream(jobs, notice_horizon_s: Optional[float] = None) -> JobStream:
    """Coerce *jobs* into a :class:`JobStream`.

    An existing stream passes through untouched (unless a horizon
    override is given); any other iterable is wrapped with the default
    horizon.
    """
    if isinstance(jobs, JobStream):
        if notice_horizon_s is not None:
            return JobStream(jobs, notice_horizon_s=notice_horizon_s)
        return jobs
    return JobStream(
        jobs,
        notice_horizon_s=(
            DEFAULT_NOTICE_HORIZON_S
            if notice_horizon_s is None
            else notice_horizon_s
        ),
    )
