"""Trace linting for user-supplied workloads.

Generated traces are correct by construction; traces loaded from CSV/SWF
or built by hand are not.  :func:`validate_trace` returns a list of
human-readable findings instead of raising on the first problem, so a
user can fix a whole file in one pass.  ``errors_only=True`` restricts
the output to findings that would break or silently distort a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.jobs.job import Job, JobType, NoticeClass


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    severity: str  # "error" | "warning"
    job_id: int  # -1 for trace-level findings
    message: str

    def __str__(self) -> str:
        where = f"job {self.job_id}" if self.job_id >= 0 else "trace"
        return f"[{self.severity}] {where}: {self.message}"


def validate_trace(
    jobs: Sequence[Job],
    system_size: int,
    errors_only: bool = False,
) -> List[Finding]:
    """Lint a trace against the simulator's requirements.

    Errors (simulation would fail or be wrong):

    * duplicate job ids;
    * job wider than the machine;
    * on-demand notice after the actual arrival.

    Warnings (legal but usually a data problem):

    * trace not sorted by submission time;
    * estimate equal to runtime for >90 % of jobs (real logs pad);
    * malleable job that cannot shrink (min == max);
    * on-demand job wider than half the machine (the paper reassigns
      those);
    * a LATE arrival beyond 30 minutes past its estimate (outside the
      paper's model).
    """
    findings: List[Finding] = []

    def err(job_id: int, msg: str) -> None:
        findings.append(Finding("error", job_id, msg))

    def warn(job_id: int, msg: str) -> None:
        if not errors_only:
            findings.append(Finding("warning", job_id, msg))

    seen = set()
    last_submit = float("-inf")
    sorted_ok = True
    exact_estimates = 0
    for j in jobs:
        if j.job_id in seen:
            err(j.job_id, "duplicate job id")
        seen.add(j.job_id)
        if j.size > system_size:
            err(
                j.job_id,
                f"requests {j.size} nodes on a {system_size}-node machine",
            )
        if j.submit_time < last_submit:
            sorted_ok = False
        last_submit = max(last_submit, j.submit_time)
        if j.estimate <= j.runtime * (1 + 1e-9):
            exact_estimates += 1
        if j.job_type is JobType.MALLEABLE and j.min_size == j.size:
            warn(j.job_id, "malleable but min_size == size: cannot shrink")
        if j.job_type is JobType.ONDEMAND:
            if j.size > system_size / 2:
                warn(
                    j.job_id,
                    "on-demand job wider than half the machine "
                    "(§IV-A reassigns these to rigid/malleable)",
                )
            if j.notice_class is not NoticeClass.NONE:
                if j.notice_time is not None and j.notice_time > j.submit_time:
                    err(j.job_id, "advance notice after the actual arrival")
                if (
                    j.notice_class is NoticeClass.LATE
                    and j.estimated_arrival is not None
                    and j.submit_time - j.estimated_arrival > 1800.0 + 1e-6
                ):
                    warn(
                        j.job_id,
                        "LATE arrival more than 30 min past its estimate",
                    )

    if not sorted_ok:
        warn(-1, "jobs are not sorted by submission time")
    if jobs and exact_estimates > 0.9 * len(jobs):
        warn(
            -1,
            f"{exact_estimates}/{len(jobs)} estimates equal the runtime; "
            "real logs pad estimates (backfilling behaviour will differ)",
        )
    return findings


def assert_valid(jobs: Sequence[Job], system_size: int) -> None:
    """Raise ``ValueError`` listing every *error*-level finding."""
    errors = [
        f for f in validate_trace(jobs, system_size, errors_only=True)
    ]
    if errors:
        raise ValueError(
            "invalid trace:\n" + "\n".join(str(f) for f in errors)
        )
