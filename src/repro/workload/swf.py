"""Standard Workload Format (SWF) reader.

SWF is the Parallel Workloads Archive interchange format: one job per
line, 18 whitespace-separated fields, ``;`` comment/header lines.  Real
logs (including several ANL machines) are published in SWF, so users who
*do* have a real trace can feed it straight into the simulator.

Only the fields the simulator needs are consumed:

====  =======================  ======================
 #    SWF field                used as
====  =======================  ======================
 1    job number               job_id
 2    submit time              submit_time
 4    run time                 runtime
 5    allocated processors     size (divided by cores_per_node)
 9    requested time           estimate
 14   group id                 project (fallback: user id, field 12)
====  =======================  ======================

All SWF jobs are rigid; the paper's type assignment can be layered on
with :func:`repro.workload.projects.assign_project_types` and
:func:`retype_jobs`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence

from repro.jobs.job import Job, JobType
from repro.util.errors import ConfigurationError
from repro.workload.projects import assign_project_types
from repro.workload.ondemand import assign_notice_classes
from repro.workload.spec import NoticeMix
from repro.workload.stream import JobStream

import numpy as np


def iter_swf(
    path: str,
    cores_per_node: int = 1,
    min_runtime_s: float = 60.0,
    max_jobs: Optional[int] = None,
) -> Iterator[Job]:
    """Stream an SWF file as rigid :class:`Job` objects, one line at a time.

    Identical semantics to :func:`load_swf` (same cleaning, same
    ``base_submit`` normalisation, same ids) without ever materialising
    the trace — month- or year-scale archive logs can feed a streamed
    :class:`~repro.sim.simulator.Simulation` directly via
    :func:`stream_swf` in O(in-flight) memory.
    """
    emitted = 0
    base_submit: Optional[float] = None
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            parts = line.split()
            if len(parts) < 14:
                raise ConfigurationError(
                    f"{path}: SWF line has {len(parts)} fields, expected >= 14"
                )
            submit = float(parts[1])
            runtime = float(parts[3])
            procs = float(parts[4])
            estimate = float(parts[8])
            group = int(float(parts[13])) if parts[13] != "-1" else -1
            user = int(float(parts[11])) if parts[11] != "-1" else 0
            if runtime <= 0 or procs <= 0:
                continue
            runtime = max(runtime, min_runtime_s)
            size = max(1, int(math.ceil(procs / cores_per_node)))
            if estimate <= 0:
                estimate = runtime
            estimate = max(estimate, runtime)
            if base_submit is None:
                base_submit = submit
            yield Job(
                job_id=emitted,
                job_type=JobType.RIGID,
                submit_time=submit - base_submit,
                size=size,
                runtime=runtime,
                estimate=estimate,
                setup_time=0.0,
                project=group if group >= 0 else user,
            )
            emitted += 1
            if max_jobs is not None and emitted >= max_jobs:
                break


def stream_swf(
    path: str,
    cores_per_node: int = 1,
    min_runtime_s: float = 60.0,
    max_jobs: Optional[int] = None,
) -> JobStream:
    """:func:`iter_swf` wrapped for the simulator's streaming path.

    SWF jobs carry no advance notices, so the notice horizon is 0 — the
    simulator admits each job just ahead of the event clock.
    """
    return JobStream(
        iter_swf(
            path,
            cores_per_node=cores_per_node,
            min_runtime_s=min_runtime_s,
            max_jobs=max_jobs,
        ),
        notice_horizon_s=0.0,
    )


def load_swf(
    path: str,
    cores_per_node: int = 1,
    min_runtime_s: float = 60.0,
    max_jobs: Optional[int] = None,
) -> List[Job]:
    """Parse an SWF file into rigid :class:`Job` objects.

    Jobs with unusable fields (non-positive runtime or size) are skipped,
    mirroring the cleaning every SWF consumer performs.  Estimates are
    clamped up to the actual runtime when the log undershoots (SWF logs
    kill at the limit, but some records are inconsistent).
    Materialises :func:`iter_swf`; use :func:`stream_swf` to avoid the
    full list.
    """
    return list(
        iter_swf(
            path,
            cores_per_node=cores_per_node,
            min_runtime_s=min_runtime_s,
            max_jobs=max_jobs,
        )
    )


def _retype_rows(
    jobs: Sequence[Job],
    frac_projects_ondemand: float,
    frac_projects_rigid: float,
    notice_mix: NoticeMix,
    rng: np.random.Generator,
    system_size: int,
    malleable_min_size_frac: float,
    rigid_setup_frac: tuple,
    malleable_setup_frac: tuple,
    lead_range_s: tuple,
    late_window_s: float,
) -> List[dict]:
    """The §IV-A type-assignment draws, as lightweight rows.

    Performs every RNG draw in the exact order :func:`retype_jobs` has
    always used (project types → per-job oversize reassignments in file
    order → notice classes over the on-demand rows → setup fractions in
    file order), then sorts rows into submit order — so the jobs built
    from these rows are byte-identical whether materialised eagerly or
    streamed.  Input jobs are referenced, never mutated.
    """
    projects = sorted({j.project for j in jobs})
    remap: Dict[int, int] = {p: i for i, p in enumerate(projects)}
    types = assign_project_types(
        len(projects), frac_projects_ondemand, frac_projects_rigid, rng
    )
    rows: List[dict] = []
    for j in jobs:
        jtype = types[remap[j.project]]
        if jtype is JobType.ONDEMAND and j.size > system_size / 2:
            jtype = JobType.RIGID if rng.random() < 0.5 else JobType.MALLEABLE
        rows.append(
            {
                "job": j,
                "type": jtype,
                "submit": j.submit_time,
            }
        )
    od_rows = [r for r in rows if r["type"] is JobType.ONDEMAND]
    assign_notice_classes(od_rows, notice_mix, rng, lead_range_s, late_window_s)
    for row in rows:
        j = row["job"]
        jtype = row["type"]
        if jtype is JobType.RIGID:
            row["setup"] = rng.uniform(*rigid_setup_frac) * j.runtime
            row["min_size"] = None
        elif jtype is JobType.MALLEABLE:
            row["setup"] = rng.uniform(*malleable_setup_frac) * j.runtime
            row["min_size"] = max(
                1, int(math.ceil(malleable_min_size_frac * j.size))
            )
        else:
            row["setup"] = 0.0
            row["min_size"] = None
    # Same permutation as sorting the built jobs by (submit_time, job_id).
    rows.sort(key=lambda r: (r["submit"], r["job"].job_id))
    return rows


def _job_from_retype_row(row: dict) -> Job:
    j = row["job"]
    return Job(
        job_id=j.job_id,
        job_type=row["type"],
        submit_time=row["submit"],
        size=j.size,
        runtime=j.runtime,
        estimate=j.estimate,
        setup_time=row["setup"],
        min_size=row["min_size"],
        project=j.project,
        notice_class=row.get("notice_class", j.notice_class),
        notice_time=row.get("notice_time"),
        estimated_arrival=row.get("estimated_arrival"),
    )


def iter_retyped(
    jobs: Sequence[Job],
    frac_projects_ondemand: float,
    frac_projects_rigid: float,
    notice_mix: NoticeMix,
    rng: np.random.Generator,
    system_size: int,
    malleable_min_size_frac: float = 0.2,
    rigid_setup_frac: tuple = (0.05, 0.10),
    malleable_setup_frac: tuple = (0.0, 0.05),
    lead_range_s: tuple = (900.0, 1800.0),
    late_window_s: float = 1800.0,
) -> Iterator[Job]:
    """:func:`retype_jobs` yielded lazily, one fresh job at a time.

    All draws happen up front (the assignment is correlated across the
    whole trace), but Job construction is deferred — streaming a cached,
    shared rigid trace (see :mod:`repro.workload.trace_cache`) through
    here keeps the mutable Job layer O(in-flight).
    """
    rows = _retype_rows(
        jobs,
        frac_projects_ondemand,
        frac_projects_rigid,
        notice_mix,
        rng,
        system_size,
        malleable_min_size_frac,
        rigid_setup_frac,
        malleable_setup_frac,
        lead_range_s,
        late_window_s,
    )
    rows.reverse()
    while rows:
        yield _job_from_retype_row(rows.pop())


def retype_stream(
    jobs: Sequence[Job],
    frac_projects_ondemand: float,
    frac_projects_rigid: float,
    notice_mix: NoticeMix,
    rng: np.random.Generator,
    system_size: int,
    malleable_min_size_frac: float = 0.2,
    rigid_setup_frac: tuple = (0.05, 0.10),
    malleable_setup_frac: tuple = (0.0, 0.05),
    lead_range_s: tuple = (900.0, 1800.0),
    late_window_s: float = 1800.0,
) -> JobStream:
    """:func:`iter_retyped` wrapped for the simulator's streaming path.

    Unlike raw SWF jobs (horizon 0), retyped traces carry advance
    notices: a notice precedes its job's submission by at most the
    maximum lead plus the late window, so that is the stream's horizon.
    """
    return JobStream(
        iter_retyped(
            jobs,
            frac_projects_ondemand,
            frac_projects_rigid,
            notice_mix,
            rng,
            system_size,
            malleable_min_size_frac,
            rigid_setup_frac,
            malleable_setup_frac,
            lead_range_s,
            late_window_s,
        ),
        notice_horizon_s=lead_range_s[1] + late_window_s,
    )


def retype_jobs(
    jobs: Sequence[Job],
    frac_projects_ondemand: float,
    frac_projects_rigid: float,
    notice_mix: NoticeMix,
    rng: np.random.Generator,
    system_size: int,
    malleable_min_size_frac: float = 0.2,
    rigid_setup_frac: tuple = (0.05, 0.10),
    malleable_setup_frac: tuple = (0.0, 0.05),
    lead_range_s: tuple = (900.0, 1800.0),
    late_window_s: float = 1800.0,
) -> List[Job]:
    """Apply the paper's §IV-A type assignment to a rigid (SWF) trace.

    Returns new Job objects; the input list is not modified.
    """
    return list(
        iter_retyped(
            jobs,
            frac_projects_ondemand,
            frac_projects_rigid,
            notice_mix,
            rng,
            system_size,
            malleable_min_size_frac,
            rigid_setup_frac,
            malleable_setup_frac,
            lead_range_s,
            late_window_s,
        )
    )
