"""The synthetic Theta-like trace generator (§IV-A substitution).

The real Theta 2019 Cobalt log is unavailable, so this generator produces
traces matched to the paper's reported statistics (see DESIGN.md for the
substitution argument).  Pipeline:

1. draw (size, runtime, estimate) tuples until the offered load reaches
   ``spec.target_load`` — the job count then emerges (~37 k/year at Theta
   scale, Table I);
2. assign each job to one of ``n_projects`` projects with Zipf-skewed
   activity;
3. give every project a bursty session-based submission process (Fig. 5);
4. assign job types at project granularity (10 % / 60 % / 30 %, §IV-B),
   reassigning over-half-machine on-demand jobs to rigid/malleable;
5. derive per-type fields: setup overheads, malleable minimum sizes, and
   the four on-demand notice classes of the experiment's Table III mix.

Everything is driven by named RNG streams, so a (spec, seed) pair is a
complete, bit-reproducible description of a trace.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List

import numpy as np

from repro.jobs.job import Job, JobType, NoticeClass
from repro.util.rng import RngStreams
from repro.workload.ondemand import assign_notice_classes
from repro.workload.projects import ProjectTable, build_project_table
from repro.workload.spec import WorkloadSpec
from repro.workload.stream import JobStream


class ThetaWorkloadGenerator:
    """Generates one synthetic trace from a spec and a seed."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.streams = RngStreams(seed)

    # ------------------------------------------------------------------
    # Individual field samplers
    # ------------------------------------------------------------------
    def _sample_size(self, rng: np.random.Generator) -> int:
        """Log-uniform within a Fig. 3 size bucket, rounded to granularity."""
        s = self.spec
        bucket = int(rng.choice(len(s.size_bucket_weights), p=s.size_bucket_weights))
        lo = s.size_bucket_edges[bucket]
        hi = (
            s.size_bucket_edges[bucket + 1]
            if bucket + 1 < len(s.size_bucket_edges)
            else s.system_size
        )
        hi = max(hi, lo + 1)
        raw = math.exp(rng.uniform(math.log(lo), math.log(hi)))
        size = int(round(raw / s.size_granularity) * s.size_granularity)
        return int(min(max(size, s.min_size), s.system_size))

    def _sample_runtime(self, rng: np.random.Generator) -> float:
        s = self.spec
        mu = math.log(s.runtime_lognorm_median_s)
        rt = float(rng.lognormal(mean=mu, sigma=s.runtime_lognorm_sigma))
        return min(max(rt, s.min_runtime_s), s.max_runtime_s)

    def _sample_estimate(self, runtime: float, rng: np.random.Generator) -> float:
        s = self.spec
        pad = float(rng.exponential(s.estimate_pad_mean))
        est = runtime * (1.0 + pad)
        gran = s.estimate_granularity_s
        est = math.ceil(est / gran) * gran
        return float(min(max(est, runtime), max(s.max_runtime_s, runtime)))

    # ------------------------------------------------------------------
    # Submission process
    # ------------------------------------------------------------------
    def _session_times(
        self, n_jobs: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Bursty submit times for one project's jobs (Fig. 5 pattern).

        Two levels of clustering: jobs group into minutes-apart *sessions*,
        and sessions group into multi-day *activity windows* (campaigns).
        The windows are what make the weekly on-demand counts swing the
        way Fig. 5 shows.
        """
        s = self.spec
        n_sessions = max(1, int(round(n_jobs / s.session_mean_jobs)))
        n_windows = max(1, int(math.ceil(n_sessions / s.sessions_per_window)))
        window_centers = rng.uniform(0.0, s.horizon_s, size=n_windows)
        session_starts = window_centers[
            rng.integers(0, n_windows, size=n_sessions)
        ] + rng.normal(0.0, s.activity_window_std_s, size=n_sessions)
        session_starts = np.clip(session_starts, 0.0, s.horizon_s)
        # Assign jobs to sessions and space them exponentially inside each.
        assignment = rng.integers(0, n_sessions, size=n_jobs)
        times = np.empty(n_jobs)
        for sess in range(n_sessions):
            members = np.flatnonzero(assignment == sess)
            if len(members) == 0:
                continue
            gaps = rng.exponential(s.session_interarrival_s, size=len(members))
            times[members] = session_starts[sess] + np.cumsum(gaps)
        return np.clip(times, 0.0, s.horizon_s)

    # ------------------------------------------------------------------
    @property
    def notice_horizon_s(self) -> float:
        """Upper bound on ``submit_time - notice_time`` for this spec.

        The widest gap is a LATE arrival: its notice precedes the
        *estimated* arrival by at most the maximum lead, and the actual
        submission trails the estimate by at most the late window.
        """
        return notice_horizon_s(self.spec)

    def generate(self) -> List[Job]:
        """Produce the trace: a submit-time-sorted list of fresh jobs."""
        rows = self.build_rows()
        return [self._job_from_row(job_id, row) for job_id, row in enumerate(rows)]

    def iter_jobs(self) -> JobStream:
        """The same trace as :meth:`generate`, yielded lazily in submit order.

        Identical (spec, seed) draws — job-for-job equal to
        :meth:`generate`, same ids — but :class:`Job` objects (and their
        mutable stats) are built one at a time and each intermediate row
        is released as soon as its job is yielded, so a streamed
        simulation never holds the materialized trace.  The shape/
        submission pipeline itself still builds its lightweight row
        dicts (the correlated project/session draws need the full
        population), so generation is O(trace) in *row* memory but the
        expensive Job layer stays O(in-flight).
        """
        rows = self.build_rows()

        def emit() -> Iterator[Job]:
            # pop from the tail of the reversed list: ascending submit
            # order, freeing each row as it is consumed
            rows.reverse()
            job_id = 0
            while rows:
                yield self._job_from_row(job_id, rows.pop())
                job_id += 1

        return JobStream(emit(), notice_horizon_s=self.notice_horizon_s)

    def build_rows(self) -> List[dict]:
        """Steps 1–5 of the pipeline: submit-sorted intermediate rows.

        Rows are the generator's lightweight pre-Job form — plain dicts
        carrying every sampled field.  They are what the process-wide
        :class:`~repro.workload.trace_cache.TraceCache` stores, because
        one row list can back any number of simulations (each builds its
        own fresh mutable :class:`Job` objects via
        :func:`stream_jobs_from_rows`) while a Job list cannot be shared
        (simulations mutate job state in place).
        """
        s = self.spec
        rng_shape = self.streams.get("shape")
        rng_proj = self.streams.get("projects")
        rng_sess = self.streams.get("sessions")
        rng_type = self.streams.get("types")
        rng_notice = self.streams.get("notice")
        rng_setup = self.streams.get("setup")

        # 1. Draw job shapes until the offered load target is met.
        target_work = s.target_load * s.system_size * s.horizon_s
        rows: List[dict] = []
        work = 0.0
        while work < target_work:
            size = self._sample_size(rng_shape)
            runtime = self._sample_runtime(rng_shape)
            estimate = self._sample_estimate(runtime, rng_shape)
            rows.append({"size": size, "runtime": runtime, "estimate": estimate})
            work += size * runtime

        # 2. Projects with Zipf-skewed activity.
        table: ProjectTable = build_project_table(
            s.n_projects,
            s.project_zipf_s,
            s.frac_projects_ondemand,
            s.frac_projects_rigid,
            rng_proj,
        )
        projects = rng_proj.choice(s.n_projects, size=len(rows), p=table.weights)
        for row, project in zip(rows, projects):
            row["project"] = int(project)

        # 3. Bursty per-project submission sessions.
        by_project: Dict[int, List[int]] = {}
        for idx, row in enumerate(rows):
            by_project.setdefault(row["project"], []).append(idx)
        for project, indices in sorted(by_project.items()):
            times = self._session_times(len(indices), rng_sess)
            for idx, t in zip(indices, times):
                rows[idx]["submit"] = float(t)

        # 4. Types at project granularity; large on-demand jobs reassigned.
        half = s.ondemand_max_size_frac * s.system_size
        for row in rows:
            jtype = table.type_of(row["project"])
            if jtype is JobType.ONDEMAND and row["size"] > half:
                jtype = (
                    JobType.RIGID if rng_type.random() < 0.5 else JobType.MALLEABLE
                )
            row["type"] = jtype

        # 5. Per-type fields.
        od_rows = [r for r in rows if r["type"] is JobType.ONDEMAND]
        assign_notice_classes(
            od_rows,
            s.notice_mix,
            rng_notice,
            s.notice_lead_range_s,
            s.late_window_s,
        )
        # §III-B.4 extension: some announced jobs never actually arrive.
        if s.ondemand_noshow_frac > 0:
            for row in od_rows:
                row["no_show"] = bool(
                    row.get("notice_time") is not None
                    and rng_notice.random() < s.ondemand_noshow_frac
                )
        for row in rows:
            jtype = row["type"]
            if jtype is JobType.RIGID:
                frac = rng_setup.uniform(*s.rigid_setup_frac)
                row["setup"] = frac * row["runtime"]
                row["min_size"] = None
            elif jtype is JobType.MALLEABLE:
                frac = rng_setup.uniform(*s.malleable_setup_frac)
                row["setup"] = frac * row["runtime"]
                row["min_size"] = max(
                    1, int(math.ceil(s.malleable_min_size_frac * row["size"]))
                )
            else:  # on-demand: zero setup, fixed size
                row["setup"] = 0.0
                row["min_size"] = None

        # 6. Submit order (Job materialisation is the caller's step).
        rows.sort(key=lambda r: (r["submit"], r["size"]))
        return rows

    @staticmethod
    def _job_from_row(job_id: int, row: dict) -> Job:
        return Job(
            job_id=job_id,
            job_type=row["type"],
            submit_time=row["submit"],
            size=row["size"],
            runtime=row["runtime"],
            estimate=row["estimate"],
            setup_time=row["setup"],
            min_size=row["min_size"],
            project=row["project"],
            notice_class=row.get("notice_class", NoticeClass.NONE),
            notice_time=row.get("notice_time"),
            estimated_arrival=row.get("estimated_arrival"),
            no_show=row.get("no_show", False),
        )


def notice_horizon_s(spec: WorkloadSpec) -> float:
    """Upper bound on ``submit_time - notice_time`` for a spec's traces.

    The widest gap is a LATE arrival: its notice precedes the *estimated*
    arrival by at most the maximum lead, and the actual submission trails
    the estimate by at most the late window.
    """
    return spec.notice_lead_range_s[1] + spec.late_window_s


def stream_jobs_from_rows(spec: WorkloadSpec, rows: List[dict]) -> JobStream:
    """Lazily build fresh jobs from shared generator rows.

    Unlike :meth:`ThetaWorkloadGenerator.iter_jobs`, which consumes its
    own private row list destructively, this enumerates ``rows`` without
    mutating them — the point is to stream many simulations off one
    cached row list (see :mod:`repro.workload.trace_cache`).  Job ids
    and ordering match :func:`generate_trace` exactly, so a simulation
    fed from here is byte-identical to the materialized path.
    """

    def emit() -> Iterator[Job]:
        for job_id, row in enumerate(rows):
            yield ThetaWorkloadGenerator._job_from_row(job_id, row)

    return JobStream(emit(), notice_horizon_s=notice_horizon_s(spec))


def generate_trace(spec: WorkloadSpec, seed: int = 0) -> List[Job]:
    """One-call convenience wrapper around :class:`ThetaWorkloadGenerator`."""
    return ThetaWorkloadGenerator(spec, seed=seed).generate()
