"""Workload specification: all tunables of the synthetic trace generator.

Defaults reproduce the Theta workload of Table I / Fig. 3 and the job-type
configuration of §IV-B.  Tests shrink the machine and the horizon through
the same spec, so every statistical property is exercised at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

from repro.util.errors import ConfigurationError
from repro.util.timeconst import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class NoticeMix:
    """Fractions of the four on-demand notice classes (Fig. 1, Table III).

    Order: (no notice, accurate notice, arrive early, arrive late).
    """

    name: str
    none: float
    accurate: float
    early: float
    late: float

    def __post_init__(self) -> None:
        total = self.none + self.accurate + self.early + self.late
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"notice mix {self.name}: fractions sum to {total}, not 1"
            )
        for frac in (self.none, self.accurate, self.early, self.late):
            if frac < 0:
                raise ConfigurationError(
                    f"notice mix {self.name}: negative fraction"
                )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.none, self.accurate, self.early, self.late)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "none": self.none,
            "accurate": self.accurate,
            "early": self.early,
            "late": self.late,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "NoticeMix":
        """Rebuild a mix from :meth:`to_dict` output (or a Table III name)."""
        return NoticeMix(
            name=str(data["name"]),
            none=float(data["none"]),  # type: ignore[arg-type]
            accurate=float(data["accurate"]),  # type: ignore[arg-type]
            early=float(data["early"]),  # type: ignore[arg-type]
            late=float(data["late"]),  # type: ignore[arg-type]
        )


#: Table III — the five workload notice-accuracy mixes.
W1 = NoticeMix("W1", 0.70, 0.10, 0.10, 0.10)
W2 = NoticeMix("W2", 0.10, 0.70, 0.10, 0.10)
W3 = NoticeMix("W3", 0.10, 0.10, 0.70, 0.10)
W4 = NoticeMix("W4", 0.10, 0.10, 0.10, 0.70)
W5 = NoticeMix("W5", 0.25, 0.25, 0.25, 0.25)

NOTICE_MIXES: Dict[str, NoticeMix] = {m.name: m for m in (W1, W2, W3, W4, W5)}


@dataclass(frozen=True)
class WorkloadSpec:
    """Every knob of the synthetic Theta-like trace generator.

    The generator draws jobs until the *offered load* (total node-seconds
    of work over machine capacity in the submission window) reaches
    ``target_load`` — so the job count scales with the horizon and lands
    near Theta's ~37.3 k/year at the default load.
    """

    # --- machine & horizon -------------------------------------------------
    system_size: int = 4392
    days: float = 365.0
    #: offered load: sum(size*runtime) / (system_size * horizon).  0.82 is
    #: calibrated so baseline FCFS/EASY lands near Table II (~84 % util,
    #: ~22 % on-demand instant start) on multi-week horizons.
    target_load: float = 0.82

    # --- job size mix (Fig. 3) --------------------------------------------
    min_size: int = 128
    #: (bucket upper bound as fraction of log2 range is implicit) weights of
    #: the five Fig. 3 size buckets, smallest first
    size_bucket_weights: Tuple[float, ...] = (0.58, 0.24, 0.10, 0.055, 0.025)
    #: bucket boundaries in nodes; the last bucket tops out at system_size
    size_bucket_edges: Tuple[int, ...] = (128, 256, 512, 1024, 2048)
    #: node-count granularity jobs are rounded to
    size_granularity: int = 64

    # --- runtimes & estimates (Table I: max job length one day) ------------
    min_runtime_s: float = 5 * MINUTE
    max_runtime_s: float = DAY
    runtime_lognorm_median_s: float = 1.4 * HOUR
    runtime_lognorm_sigma: float = 1.1
    #: estimates are runtime * (1 + pad), pad ~ Exp(estimate_pad_mean),
    #: rounded up to estimate_granularity_s and clamped to max_runtime_s
    estimate_pad_mean: float = 0.8
    estimate_granularity_s: float = 30 * MINUTE

    # --- projects & burstiness (Table I: 211 projects; Fig. 5) -------------
    n_projects: int = 211
    project_zipf_s: float = 1.4
    #: mean jobs per submission session (bursts)
    session_mean_jobs: float = 4.0
    #: mean intra-session inter-arrival
    session_interarrival_s: float = 5 * MINUTE
    #: sessions cluster into multi-day activity windows (campaigns), which
    #: is what makes the *weekly* on-demand counts of Fig. 5 swing
    sessions_per_window: float = 5.0
    activity_window_std_s: float = 1.5 * DAY

    # --- job-type assignment (§IV-B) ---------------------------------------
    frac_projects_ondemand: float = 0.10
    frac_projects_rigid: float = 0.60
    #: remainder of projects is malleable
    #: on-demand jobs wider than this fraction of the machine are
    #: reassigned to rigid/malleable (§IV-A)
    ondemand_max_size_frac: float = 0.5

    # --- per-type parameters (§IV-B) ----------------------------------------
    rigid_setup_frac: Tuple[float, float] = (0.05, 0.10)
    malleable_setup_frac: Tuple[float, float] = (0.0, 0.05)
    malleable_min_size_frac: float = 0.20

    # --- advance notice (§III-A, §IV-B) -------------------------------------
    notice_mix: NoticeMix = W5
    notice_lead_range_s: Tuple[float, float] = (15 * MINUTE, 30 * MINUTE)
    late_window_s: float = 30 * MINUTE
    #: fraction of *noticed* on-demand jobs that never actually arrive
    #: (§III-B.4: "may arrive late or even do not show up"); extension,
    #: zero in paper-faithful runs
    ondemand_noshow_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.system_size <= 0:
            raise ConfigurationError("system_size must be positive")
        if self.days <= 0:
            raise ConfigurationError("days must be positive")
        if not (0 < self.target_load <= 2.0):
            raise ConfigurationError("target_load must be in (0, 2]")
        if self.min_size <= 0 or self.min_size > self.system_size:
            raise ConfigurationError("min_size must be in [1, system_size]")
        if len(self.size_bucket_weights) != len(self.size_bucket_edges):
            raise ConfigurationError(
                "size_bucket_weights and size_bucket_edges lengths differ"
            )
        if abs(sum(self.size_bucket_weights) - 1.0) > 1e-9:
            raise ConfigurationError("size bucket weights must sum to 1")
        if self.min_runtime_s <= 0 or self.max_runtime_s < self.min_runtime_s:
            raise ConfigurationError("invalid runtime bounds")
        if self.n_projects <= 0:
            raise ConfigurationError("n_projects must be positive")
        f_od, f_r = self.frac_projects_ondemand, self.frac_projects_rigid
        if f_od < 0 or f_r < 0 or f_od + f_r > 1.0 + 1e-9:
            raise ConfigurationError("project type fractions invalid")
        if not (0 < self.malleable_min_size_frac <= 1):
            raise ConfigurationError("malleable_min_size_frac must be in (0,1]")
        lo, hi = self.notice_lead_range_s
        if lo < 0 or hi < lo:
            raise ConfigurationError("invalid notice lead range")
        if not (0.0 <= self.ondemand_noshow_frac <= 1.0):
            raise ConfigurationError("ondemand_noshow_frac must be in [0, 1]")

    @property
    def horizon_s(self) -> float:
        return self.days * DAY

    def with_notice_mix(self, mix: NoticeMix) -> "WorkloadSpec":
        """Copy of this spec with a different Table III mix."""
        from dataclasses import replace

        return replace(self, notice_mix=mix)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of every knob (tuples become lists).

        The campaign result store hashes and persists this, so the
        representation must be deterministic and round-trippable through
        :meth:`from_dict`.
        """
        out: Dict[str, object] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if isinstance(value, NoticeMix):
                out[name] = value.to_dict()
            elif isinstance(value, tuple):
                out[name] = list(value)
            else:
                out[name] = value
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "WorkloadSpec":
        """Inverse of :meth:`to_dict`."""
        kwargs: Dict[str, object] = {}
        for name in WorkloadSpec.__dataclass_fields__:
            if name not in data:
                continue
            value = data[name]
            if name == "notice_mix":
                if isinstance(value, dict):
                    value = NoticeMix.from_dict(value)
                elif isinstance(value, str):
                    value = NOTICE_MIXES[value]
            elif isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        unknown = set(data) - set(WorkloadSpec.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown workload spec fields: {sorted(unknown)}"
            )
        return WorkloadSpec(**kwargs)  # type: ignore[arg-type]


def _build_theta_spec(days: float, **overrides) -> WorkloadSpec:
    from dataclasses import replace

    return replace(WorkloadSpec(days=days), **overrides)


@lru_cache(maxsize=256)
def _theta_spec_cached(days: float, items: tuple) -> WorkloadSpec:
    return _build_theta_spec(days, **dict(items))


def theta_spec(days: float = 365.0, **overrides) -> WorkloadSpec:
    """The Theta-calibrated spec, optionally shortened or tweaked.

    Specs are frozen, so identical calls share one memoized instance —
    campaign cells resolve their workload spec several times per cell
    and the two construct-and-validate passes here showed up in
    profiles.  Unhashable override values fall back to a fresh build.

    >>> spec = theta_spec(days=28, target_load=0.9)
    >>> spec.system_size
    4392
    """
    try:
        return _theta_spec_cached(days, tuple(sorted(overrides.items())))
    except TypeError:
        return _build_theta_spec(days, **overrides)
