"""SPAA's even shrink of running malleable jobs (§III-B.2).

"This method first finds all currently running malleable jobs and computes
the maximum number of nodes they can supply by shrinking to their minimum
sizes.  If the supply can meet the on-demand job's request, the running
malleable jobs will shrink their sizes evenly."

*Evenly* is implemented as water-filling: all jobs are lowered toward a
common level ``L`` (never below their own minimum) until the deficit is
covered.  The exact integer level is found by bisection on the supply
function ``S(L) = sum(max(0, cur_i - max(min_i, L)))``, which is
non-increasing in ``L``; the integer surplus at the chosen level is
returned one node at a time to the lowest-id jobs, keeping the result
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class ShrinkCandidate:
    """A running malleable job that could give up nodes."""

    job_id: int
    current: int
    minimum: int

    def __post_init__(self) -> None:
        if not (1 <= self.minimum <= self.current):
            raise ValueError(
                f"job {self.job_id}: invalid shrink bounds "
                f"min={self.minimum} cur={self.current}"
            )


def _supply_at(candidates: Sequence[ShrinkCandidate], level: int) -> int:
    return sum(
        max(0, c.current - max(c.minimum, level)) for c in candidates
    )


def plan_even_shrink(
    candidates: Sequence[ShrinkCandidate], deficit: int
) -> Optional[Dict[int, int]]:
    """Plan an even shrink freeing exactly *deficit* nodes.

    Returns ``{job_id: nodes_taken}`` (only jobs that actually shrink), or
    ``None`` when shrinking everything to minimum cannot cover the deficit
    (SPAA then falls back to PAA).
    """
    if deficit <= 0:
        return {}
    total_supply = _supply_at(candidates, 0)
    if total_supply < deficit:
        return None

    # Largest integer level L with supply(L) >= deficit.  supply() is
    # non-increasing in L, supply(0) >= deficit, so bisect on [0, max cur].
    lo, hi = 0, max(c.current for c in candidates)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if _supply_at(candidates, mid) >= deficit:
            lo = mid
        else:
            hi = mid - 1
    level = lo

    takes: Dict[int, int] = {}
    for c in candidates:
        take = max(0, c.current - max(c.minimum, level))
        if take > 0:
            takes[c.job_id] = take

    # Return the integer surplus one node at a time, lowest job id first,
    # to jobs that were shrunk all the way to the common level (they have
    # headroom to sit one node above it).
    surplus = sum(takes.values()) - deficit
    if surplus > 0:
        at_level = sorted(
            c.job_id
            for c in candidates
            if c.job_id in takes and max(c.minimum, level) == level
        )
        for job_id in at_level:
            if surplus == 0:
                break
            takes[job_id] -= 1
            surplus -= 1
            if takes[job_id] == 0:
                del takes[job_id]
    if surplus != 0:
        raise AssertionError(
            f"water-fill failed to balance: surplus={surplus} at level {level}"
        )
    return takes
