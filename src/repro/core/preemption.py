"""Victim selection for preemption (§III-B.2, PAA).

"This method lists all currently running malleable and rigid jobs in
ascending order of their preemption overheads ... we preempt jobs from the
front of the running list until the on-demand request is satisfied."

The preemption overhead of a job is the node-seconds that would be wasted
by preempting it right now: compute rolled back to the last checkpoint
plus the setup a resume will re-pay.  Malleable jobs lose no compute (the
two-minute-warning checkpoint) so they sort first — which is why the paper
observes a higher preemption ratio for malleable than rigid jobs (Obs. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class VictimCandidate:
    """A running job eligible for preemption at some instant."""

    job_id: int
    nodes: int
    #: node-seconds wasted if preempted now (lost compute + re-setup)
    loss: float


def select_victims(
    candidates: Sequence[VictimCandidate], deficit: int
) -> Optional[List[VictimCandidate]]:
    """Pick the cheapest victims whose combined nodes cover *deficit*.

    Candidates are taken in ascending ``(loss, job_id)`` order — job id
    breaks ties deterministically — until the cumulative node count
    reaches the deficit.  Returns ``None`` when even preempting everything
    would not cover it ("we cannot start the on-demand job instantly and
    have to put it to the front of the queue").

    The last victim may over-supply; the surplus flows to the free pool
    (the lender is only owed what the on-demand job took — see
    :mod:`repro.core.ledger`).
    """
    if deficit <= 0:
        return []
    total = sum(c.nodes for c in candidates)
    if total < deficit:
        return None
    chosen: List[VictimCandidate] = []
    got = 0
    for cand in sorted(candidates, key=lambda c: (c.loss, c.job_id)):
        chosen.append(cand)
        got += cand.nodes
        if got >= deficit:
            return chosen
    raise AssertionError("unreachable: total >= deficit guaranteed above")
