"""The paper's contribution: hybrid-workload scheduling mechanisms.

A *mechanism* pairs an advance-notice strategy with an arrival strategy
(§III-B): ``{N, CUA, CUP} x {PAA, SPAA}`` giving the six mechanisms the
paper evaluates.  The :class:`~repro.core.coordinator.HybridCoordinator`
implements the four on-demand lifecycle events (advance notice, actual
arrival, estimated-arrival timeout, completion) on top of:

* :class:`~repro.core.reservation.ReservationBook` — idle-node holdings,
  backfill loans, CUP earmarks and planned preemptions;
* :class:`~repro.core.ledger.LenderLedger` — who lent nodes to which
  on-demand job, settled at on-demand completion (§III-B.3);
* :func:`~repro.core.preemption.select_victims` — cheapest-first victim
  selection by preemption overhead;
* :func:`~repro.core.shrink.plan_even_shrink` — SPAA's even water-filling
  shrink of running malleable jobs.
"""

from repro.core.coordinator import HybridCoordinator
from repro.core.ledger import Lease, LeaseKind, LenderLedger
from repro.core.mechanisms import (
    ALL_MECHANISMS,
    ArrivalStrategy,
    Mechanism,
    NoticeStrategy,
)
from repro.core.preemption import VictimCandidate, select_victims
from repro.core.reservation import Reservation, ReservationBook
from repro.core.shrink import plan_even_shrink

__all__ = [
    "HybridCoordinator",
    "Lease",
    "LeaseKind",
    "LenderLedger",
    "ALL_MECHANISMS",
    "ArrivalStrategy",
    "Mechanism",
    "NoticeStrategy",
    "VictimCandidate",
    "select_victims",
    "Reservation",
    "ReservationBook",
    "plan_even_shrink",
]
