"""Reservations for on-demand jobs: holdings, loans, earmarks, plans.

A :class:`Reservation` tracks everything an advance-notice strategy has
lined up for one announced on-demand job:

* ``held`` — idle nodes set aside right now.  Held nodes live inside the
  cluster's *free* pool (the cluster does not know about reservations);
  the book guarantees ``sum(held) <= cluster.free`` by construction: every
  increment of ``held`` is backed by an explicit free-node budget passed
  in by the coordinator.
* ``loans`` — held nodes lent to *backfilled* jobs (§III-B.1: "the nodes
  reserved for on-demand jobs can be used to backfill jobs").  A loan
  stays *secured*: the borrower is preempted when the on-demand job
  arrives, or the nodes flow back into ``held`` if the borrower finishes
  first.
* ``earmarks`` — CUP's pledges on running jobs whose estimated end
  precedes the predicted arrival; honoured when the job releases nodes.
* ``planned`` — CUP's scheduled preemptions (rigid victims right after a
  checkpoint completion, malleable victims at the predicted arrival).

The book serialises competition between on-demand jobs: "the released
nodes are assigned to the on-demand job with the earliest advance notice".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.errors import InvariantViolation


@dataclass
class PlannedPreemption:
    """One CUP-scheduled preemption of a running job."""

    victim_job_id: int
    fire_time: float
    pledge: int
    cancelled: bool = False


@dataclass
class Reservation:
    """Everything lined up for one announced on-demand job."""

    od_job_id: int
    need: int
    notice_time: float
    estimated_arrival: float
    expiry_time: float
    #: CUA-style passive absorption of free nodes (False for CUP)
    collecting: bool = False
    held: int = 0
    loans: Dict[int, int] = field(default_factory=dict)
    earmarks: Dict[int, int] = field(default_factory=dict)
    planned: Dict[int, PlannedPreemption] = field(default_factory=dict)
    active: bool = True
    arrived: bool = False

    @property
    def secured(self) -> int:
        """Nodes the on-demand job can count on at arrival (held + loans)."""
        return self.held + sum(self.loans.values())

    @property
    def deficit(self) -> int:
        """Nodes still missing relative to the request."""
        return max(0, self.need - self.secured)


class ReservationBook:
    """All active reservations, ordered by advance-notice time."""

    def __init__(self) -> None:
        self._by_od: Dict[int, Reservation] = {}
        self.total_held = 0
        self.held_node_seconds = 0.0
        self._last_t = 0.0
        #: reverse index: running job id -> [(od_job_id, pledge)]
        self._earmarks_on: Dict[int, List[Tuple[int, int]]] = {}
        self._planned_on: Dict[int, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    def advance(self, t: float) -> None:
        """Integrate reserved-idle node-seconds up to *t*."""
        if t < self._last_t - 1e-6:
            raise InvariantViolation(
                f"reservation clock moved backwards: {self._last_t} -> {t}"
            )
        dt = max(0.0, t - self._last_t)
        self.held_node_seconds += dt * self.total_held
        self._last_t = t

    # ------------------------------------------------------------------
    def get(self, od_job_id: int) -> Optional[Reservation]:
        res = self._by_od.get(od_job_id)
        return res if res is not None and res.active else None

    def active_reservations(self) -> List[Reservation]:
        """Active reservations in earliest-notice order (priority order)."""
        return sorted(
            (r for r in self._by_od.values() if r.active),
            key=lambda r: (r.notice_time, r.od_job_id),
        )

    def holding_reservations(self) -> List[Reservation]:
        """Active reservations currently holding nodes (unsorted).

        Used by the simulator's pass skipping to spot *clock-tracking*
        pseudo-blocks (see ``Simulation._has_clock_tracking_block``);
        unlike :meth:`active_reservations` it does not sort, because
        that check runs on every potentially-skippable batch.
        """
        return [r for r in self._by_od.values() if r.active and r.held > 0]

    def create(
        self,
        od_job_id: int,
        need: int,
        notice_time: float,
        estimated_arrival: float,
        expiry_time: float,
        collecting: bool,
    ) -> Reservation:
        if od_job_id in self._by_od and self._by_od[od_job_id].active:
            raise InvariantViolation(
                f"on-demand job {od_job_id} already has an active reservation"
            )
        res = Reservation(
            od_job_id=od_job_id,
            need=need,
            notice_time=notice_time,
            estimated_arrival=estimated_arrival,
            expiry_time=expiry_time,
            collecting=collecting,
        )
        self._by_od[od_job_id] = res
        return res

    # ------------------------------------------------------------------
    def grab_free(self, res: Reservation, usable_free: int) -> int:
        """Move up to ``deficit`` usable free nodes into ``held``."""
        take = min(max(0, usable_free), res.deficit)
        if take > 0:
            res.held += take
            self.total_held += take
        return take

    def loan_out(self, res: Reservation, borrower_job_id: int, nodes: int) -> None:
        """Lend *nodes* of ``held`` to a backfilled job."""
        if nodes <= 0 or nodes > res.held:
            raise InvariantViolation(
                f"reservation {res.od_job_id}: cannot loan {nodes} of "
                f"{res.held} held nodes"
            )
        res.held -= nodes
        self.total_held -= nodes
        res.loans[borrower_job_id] = res.loans.get(borrower_job_id, 0) + nodes

    def add_earmark(self, res: Reservation, job_id: int, pledge: int) -> None:
        if pledge <= 0:
            raise InvariantViolation("earmark pledge must be positive")
        res.earmarks[job_id] = res.earmarks.get(job_id, 0) + pledge
        self._earmarks_on.setdefault(job_id, []).append((res.od_job_id, pledge))

    def add_planned(self, res: Reservation, plan: PlannedPreemption) -> None:
        if plan.victim_job_id in res.planned:
            raise InvariantViolation(
                f"reservation {res.od_job_id} already plans to preempt "
                f"job {plan.victim_job_id}"
            )
        res.planned[plan.victim_job_id] = plan
        self._planned_on.setdefault(plan.victim_job_id, []).append(
            (res.od_job_id, plan.pledge)
        )

    def pledged_on(self, job_id: int) -> int:
        """Total nodes active reservations already expect from *job_id*.

        Counts live earmarks plus non-cancelled planned preemptions; used
        by CUP planning so two reservations never pledge the same nodes.
        """
        total = 0
        for od_id in {o for o, _ in self._earmarks_on.get(job_id, ())}:
            res = self.get(od_id)
            if res is not None:
                total += res.earmarks.get(job_id, 0)
        for od_id in {o for o, _ in self._planned_on.get(job_id, ())}:
            res = self.get(od_id)
            if res is not None:
                plan = res.planned.get(job_id)
                if plan is not None and not plan.cancelled:
                    total += plan.pledge
        return total

    def loans_on(self, job_id: int) -> int:
        """Total reserved nodes *job_id* is currently borrowing."""
        return sum(
            r.loans.get(job_id, 0) for r in self._by_od.values() if r.active
        )

    # ------------------------------------------------------------------
    def on_job_release(
        self,
        job_id: int,
        released: int,
        claim_for: Optional[int] = None,
    ) -> int:
        """Distribute a finished/preempted job's nodes among reservations.

        Order: (1) loans return to their owning reservations; (2) the
        targeted claim (PAA / planned preemption) for *claim_for*; (3) CUP
        earmarks registered on this job; (4) nothing else — passive CUA
        absorption is a separate step (:meth:`absorb_free`) because CUA
        may also soak up nodes that were already free.

        Returns the number of nodes the *claim_for* reservation captured.
        """
        remaining = released

        # (1) loans return to held (they were already "secured").
        for res in self.active_reservations():
            loan = res.loans.pop(job_id, 0)
            if loan > 0:
                if loan > remaining:
                    raise InvariantViolation(
                        f"job {job_id} released {released} nodes but owes "
                        f"{loan} loaned nodes to reservation {res.od_job_id}"
                    )
                res.held += loan
                self.total_held += loan
                remaining -= loan

        # (2) targeted claim for the on-demand job we preempted for.
        claimed = 0
        if claim_for is not None:
            res = self.get(claim_for)
            if res is not None:
                claimed = min(res.deficit, remaining)
                if claimed > 0:
                    res.held += claimed
                    self.total_held += claimed
                    remaining -= claimed

        # (3) CUP earmarks on this job, earliest notice first.
        if job_id in self._earmarks_on:
            for res in self.active_reservations():
                pledge = res.earmarks.pop(job_id, 0)
                if pledge <= 0 or remaining <= 0:
                    continue
                take = min(pledge, res.deficit, remaining)
                if take > 0:
                    res.held += take
                    self.total_held += take
                    remaining -= take
            self._earmarks_on.pop(job_id, None)
        return claimed

    def absorb_free(self, usable_free: int) -> int:
        """Let CUA-style collectors soak up usable free nodes.

        Called whenever the free pool may have grown.  Collectors are
        served earliest-notice-first (§III-B.1 competition rule).  Returns
        the total absorbed.
        """
        absorbed = 0
        budget = max(0, usable_free)
        if budget == 0:
            return 0
        for res in self.active_reservations():
            if not res.collecting:
                continue
            take = min(res.deficit, budget)
            if take > 0:
                res.held += take
                self.total_held += take
                budget -= take
                absorbed += take
            if budget == 0:
                break
        return absorbed

    # ------------------------------------------------------------------
    def cancel_plans(self, res: Reservation) -> None:
        """Cancel pending planned preemptions and drop earmarks."""
        for plan in res.planned.values():
            plan.cancelled = True
        for job_id in list(res.earmarks):
            del res.earmarks[job_id]

    def deactivate(self, od_job_id: int) -> int:
        """Close a reservation; its held nodes melt back into plain free.

        Returns the number of nodes that were held.  Loans simply become
        ordinary allocations of the borrowers; pending plans are cancelled.
        """
        res = self._by_od.get(od_job_id)
        if res is None or not res.active:
            return 0
        self.cancel_plans(res)
        held = res.held
        res.held = 0
        self.total_held -= held
        res.loans.clear()
        res.active = False
        return held

    # ------------------------------------------------------------------
    def validate(self, cluster_free: int) -> None:
        """Consistency checks (used by tests and debug runs)."""
        total = 0
        for res in self._by_od.values():
            if not res.active:
                continue
            if res.held < 0:
                raise InvariantViolation(
                    f"reservation {res.od_job_id}: negative held {res.held}"
                )
            if res.secured > res.need:
                raise InvariantViolation(
                    f"reservation {res.od_job_id}: secured {res.secured} "
                    f"exceeds need {res.need}"
                )
            total += res.held
        if total != self.total_held:
            raise InvariantViolation(
                f"held total drifted: tracked {self.total_held}, actual {total}"
            )
        if total > cluster_free:
            raise InvariantViolation(
                f"held {total} exceeds cluster free pool {cluster_free}"
            )
