"""The lender ledger (§III-B.3).

When an on-demand job takes nodes from a running job — by preempting it or
by shrinking it — the victim becomes a *lender* and the on-demand job owes
it the borrowed nodes.  "For job fairness, once an on-demand job is
completed, the on-demand job will try to return its nodes to the lenders":

* a preempted lender still waiting in the queue resumes immediately if the
  returned lease plus the free pool covers its (minimum) size;
* a shrunk lender still running expands back toward its original size;
* anything else (lender finished, or already resumed on other nodes) goes
  to the common free pool.

Note the asymmetry that drives Observation 2 of the paper: the on-demand
job only owes what it *took* — when a 2000-node job is preempted to cover
a 500-node deficit, the other 1500 nodes enter the free pool and may be
consumed by anyone, so the lender may starve waiting to re-assemble its
full allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List


class LeaseKind(enum.Enum):
    PREEMPTED = "preempted"
    SHRUNK = "shrunk"


@dataclass
class Lease:
    """Nodes an on-demand job owes back to one lender."""

    od_job_id: int
    lender_job_id: int
    nodes: int
    kind: LeaseKind

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("a lease must cover at least one node")


class LenderLedger:
    """All outstanding leases, grouped by the borrowing on-demand job."""

    def __init__(self) -> None:
        self._by_od: Dict[int, List[Lease]] = {}

    def add(self, lease: Lease) -> None:
        """Record a new lease (merges with an existing same-pair lease)."""
        leases = self._by_od.setdefault(lease.od_job_id, [])
        for existing in leases:
            if (
                existing.lender_job_id == lease.lender_job_id
                and existing.kind == lease.kind
            ):
                existing.nodes += lease.nodes
                return
        leases.append(lease)

    def outstanding(self, od_job_id: int) -> List[Lease]:
        """Leases owed by *od_job_id*, in the order they were taken."""
        return list(self._by_od.get(od_job_id, ()))

    def settle(self, od_job_id: int) -> List[Lease]:
        """Remove and return all leases owed by *od_job_id*."""
        return self._by_od.pop(od_job_id, [])

    def total_owed(self, od_job_id: int) -> int:
        return sum(l.nodes for l in self._by_od.get(od_job_id, ()))

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_od.values())
