"""The hybrid-workload coordinator: on-demand lifecycle logic (§III-B).

The coordinator owns the :class:`~repro.core.reservation.ReservationBook`
and the :class:`~repro.core.ledger.LenderLedger` and implements the four
decision points of the paper as methods the simulator calls:

========================  =====================================================
event                      method
========================  =====================================================
advance notice             :meth:`HybridCoordinator.on_advance_notice`
actual arrival             :meth:`HybridCoordinator.on_od_arrival`
estimated-arrival timeout  :meth:`HybridCoordinator.on_reservation_timeout`
completion                 :meth:`HybridCoordinator.on_od_completion`
(CUP planned preemption)   :meth:`HybridCoordinator.on_planned_preempt`
(any node release)         :meth:`HybridCoordinator.on_job_release`
========================  =====================================================

It talks to the simulator through a narrow duck-typed surface
(:class:`SimulatorOps` documents it) so it can be unit-tested against a
stub.  Wall-clock decision latency of every arrival is recorded to support
Observation 10 ("less than 10 milliseconds to make a decision").
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, List, Optional, Protocol

from repro.core.ledger import Lease, LeaseKind, LenderLedger
from repro.core.mechanisms import ArrivalStrategy, Mechanism, NoticeStrategy
from repro.core.preemption import VictimCandidate, select_victims
from repro.core.reservation import PlannedPreemption, Reservation, ReservationBook
from repro.core.shrink import ShrinkCandidate, plan_even_shrink
from repro.jobs.job import Job, JobState
from repro.util.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover
    pass


class RunningView(Protocol):
    """What the coordinator needs to know about one running job."""

    job: Job
    nodes: int

    def predicted_finish(self) -> float: ...

    def preemption_loss(self, t: float) -> float: ...


class SimulatorOps(Protocol):
    """The simulator surface the coordinator drives."""

    @property
    def now(self) -> float: ...

    def usable_free(self) -> int: ...

    def running_views(self) -> List[RunningView]: ...

    def preempt_running_job(self, job_id: int, reason: str) -> int: ...

    def shrink_running_malleable(self, job_id: int, take: int) -> int: ...

    def expand_running_malleable(self, job_id: int, give: int) -> int: ...

    def start_od_job(self, job: Job) -> None: ...

    def resume_from_queue(self, job: Job, nodes: int) -> None: ...

    def push_planned_preempt(self, fire: float, od_id: int, victim_id: int) -> None: ...

    def push_reservation_timeout(self, fire: float, od_id: int) -> None: ...

    def lookup_job(self, job_id: int) -> Optional[Job]: ...

    def mark_sched_dirty(self) -> None: ...


class HybridCoordinator:
    """Implements one mechanism's behaviour on top of a simulator."""

    def __init__(
        self,
        mechanism: Optional[Mechanism],
        ops: SimulatorOps,
        reservation_grace_s: float = 600.0,
    ) -> None:
        self.mechanism = mechanism
        self.ops = ops
        self.grace = float(reservation_grace_s)
        self.book = ReservationBook()
        self.ledger = LenderLedger()
        #: wall-clock seconds spent deciding each on-demand arrival
        self.decision_latencies: List[float] = []
        #: counts for reporting
        self.instant_starts = 0
        self.deferred_starts = 0
        self.lease_resumes = 0
        self.lease_expands = 0

    # ------------------------------------------------------------------
    # Advance notice (§III-B.1)
    # ------------------------------------------------------------------
    def on_advance_notice(self, job: Job) -> None:
        """Handle an on-demand job's advance notice per the mechanism."""
        if self.mechanism is None:
            return  # baseline: notices are ignored entirely
        if self.mechanism.notice is NoticeStrategy.NOTHING:
            return
        if job.estimated_arrival is None:
            raise InvariantViolation(
                f"on-demand job {job.job_id} noticed without estimated arrival"
            )
        now = self.ops.now
        collecting = self.mechanism.notice is NoticeStrategy.COLLECT_UNTIL_ACTUAL
        res = self.book.create(
            od_job_id=job.job_id,
            need=job.size,
            notice_time=now,
            estimated_arrival=job.estimated_arrival,
            expiry_time=job.estimated_arrival + self.grace,
            collecting=collecting,
        )
        self.book.grab_free(res, self.ops.usable_free())
        if self.mechanism.notice is NoticeStrategy.COLLECT_UNTIL_PREDICTED:
            self._plan_cup(res, job)
        self.ops.push_reservation_timeout(res.expiry_time, job.job_id)
        # the new reservation changed the usable-free pool / loanable set
        self.ops.mark_sched_dirty()

    def _plan_cup(self, res: Reservation, job: Job) -> None:
        """CUP: earmark expected releases, plan preemptions for the rest.

        Earmarks and plans are *future* supply — they do not change the
        reservation's ``deficit`` until the nodes actually land — so this
        method tracks the uncovered remainder explicitly.
        """
        arrival = res.estimated_arrival
        still_needed = res.deficit
        if still_needed <= 0:
            return
        views = [v for v in self.ops.running_views() if not v.job.is_ondemand]

        # Step 1 — earmark running jobs expected to end before the arrival.
        enders = [v for v in views if v.predicted_finish() <= arrival]
        enders.sort(key=lambda v: (v.predicted_finish(), v.job.job_id))
        for v in enders:
            if still_needed <= 0:
                return
            available = (
                v.nodes
                - self.book.loans_on(v.job.job_id)
                - self.book.pledged_on(v.job.job_id)
            )
            pledge = min(still_needed, max(0, available))
            if pledge > 0:
                self.book.add_earmark(res, v.job.job_id, pledge)
                still_needed -= pledge

        # Step 2 — plan preemptions, cheapest victims first.  Rigid victims
        # fire right after their last checkpoint completion before the
        # arrival; malleable victims fire at the arrival instant (the
        # planned-preempt event sorts before the arrival event).
        if still_needed <= 0:
            return
        later = [v for v in views if v.predicted_finish() > arrival]
        later.sort(key=lambda v: (v.job.setup_time * v.nodes, v.job.job_id))
        now = self.ops.now
        for v in later:
            if still_needed <= 0:
                return
            available = (
                v.nodes
                - self.book.loans_on(v.job.job_id)
                - self.book.pledged_on(v.job.job_id)
            )
            if available <= 0:
                continue
            fire = arrival
            if v.job.is_rigid:
                last_ckpt = v.last_checkpoint_completion_at_or_before(arrival)  # type: ignore[attr-defined]
                if last_ckpt is not None and last_ckpt >= now:
                    fire = last_ckpt
            pledge = min(still_needed, available)
            self.book.add_planned(
                res,
                PlannedPreemption(
                    victim_job_id=v.job.job_id, fire_time=fire, pledge=pledge
                ),
            )
            self.ops.push_planned_preempt(fire, res.od_job_id, v.job.job_id)
            still_needed -= pledge

    # ------------------------------------------------------------------
    # CUP planned preemption firing
    # ------------------------------------------------------------------
    def on_planned_preempt(self, od_job_id: int, victim_job_id: int) -> None:
        """Execute a CUP-planned preemption if it is still valid."""
        res = self.book.get(od_job_id)
        if res is None or res.arrived:
            return
        plan = res.planned.get(victim_job_id)
        if plan is None or plan.cancelled:
            return
        plan.cancelled = True
        victim = self.ops.lookup_job(victim_job_id)
        if victim is None or victim.state is not JobState.RUNNING:
            # retired from a streamed run's window, or no longer running
            return
        room = res.need - res.held - sum(res.loans.values())
        if room <= 0:
            return
        released = self.ops.preempt_running_job(victim_job_id, reason="cup-planned")
        claimed = self.on_job_release(victim_job_id, released, claim_for=od_job_id)
        if claimed > 0:
            self.ledger.add(
                Lease(
                    od_job_id=od_job_id,
                    lender_job_id=victim_job_id,
                    nodes=claimed,
                    kind=LeaseKind.PREEMPTED,
                )
            )

    # ------------------------------------------------------------------
    # Actual arrival (§III-B.2)
    # ------------------------------------------------------------------
    def on_od_arrival(self, job: Job) -> bool:
        """Handle the actual arrival; returns True if started instantly."""
        t0 = _time.perf_counter()
        try:
            return self._handle_arrival(job)
        finally:
            self.decision_latencies.append(_time.perf_counter() - t0)

    def _handle_arrival(self, job: Job) -> bool:
        if self.mechanism is None:
            # Baseline ("FCFS/EASY without special treatments"): the
            # on-demand job is an ordinary submission — no reservation, no
            # queue priority.  The regular schedule pass at this timestamp
            # may still start it instantly via the free pool or backfill.
            return False
        res = self.book.get(job.job_id)
        if res is None:
            # N mechanism, no-notice job, or expired reservation: open an
            # arrival-time reservation so the same bookkeeping handles
            # collection while the job waits in the queue.
            res = self.book.create(
                od_job_id=job.job_id,
                need=job.size,
                notice_time=self.ops.now,
                estimated_arrival=self.ops.now,
                expiry_time=float("inf"),
                collecting=True,
            )
        res.arrived = True
        # Arrival supersedes any remaining CUP preparation ("we stop the
        # preparation and use the strategies in the following subsection").
        self.book.cancel_plans(res)
        res.collecting = True

        self._fill_from_free(res)

        # Reclaim loaned reserved nodes by preempting borrowers (only as
        # many as needed; borrowers whose loans are not needed keep them).
        if res.held < res.need and res.loans:
            self._reclaim_loans(res)

        if res.held < res.need:
            deficit = res.need - res.held
            if self.mechanism.arrival is ArrivalStrategy.SHRINK_PREEMPT:
                freed = self._try_shrink(job, deficit)
                if freed:
                    self._fill_from_free(res)
                else:
                    self._try_preempt(job, res)
            else:
                self._try_preempt(job, res)

        if res.held >= res.need:
            self._launch(job, res)
            return True
        # Not satisfiable instantly: the job stays at the front of the
        # queue; its (collecting) reservation keeps soaking up releases.
        return False

    def _fill_from_free(self, res: Reservation) -> None:
        """Raise ``held`` toward ``need`` from the usable free pool."""
        usable = self.ops.usable_free()
        room = res.need - res.held
        take = min(max(0, usable), max(0, room))
        if take > 0:
            res.held += take
            self.book.total_held += take

    def _reclaim_loans(self, res: Reservation) -> None:
        """Preempt backfilled borrowers until the holding covers the need."""
        borrowers = sorted(res.loans.keys())
        views = {v.job.job_id: v for v in self.ops.running_views()}
        # Cheapest borrowers first (they are backfilled, hence small/short).
        borrowers.sort(
            key=lambda b: (
                views[b].preemption_loss(self.ops.now) if b in views else 0.0,
                b,
            )
        )
        for borrower in borrowers:
            if res.held >= res.need:
                break
            job = self.ops.lookup_job(borrower)
            if job is None or job.state is not JobState.RUNNING or job.is_ondemand:
                # On-demand jobs are never preempted; the planner never
                # loans them reserved nodes, so this is pure defence.
                continue
            released = self.ops.preempt_running_job(borrower, reason="loan-reclaim")
            self.on_job_release(borrower, released, claim_for=res.od_job_id)
        # Any loans that were not needed are forgiven: the borrowers simply
        # keep running on what are now ordinary allocations.
        if res.held >= res.need:
            res.loans.clear()

    def _try_shrink(self, od_job: Job, deficit: int) -> bool:
        """SPAA step: shrink running malleable jobs evenly; True on success."""
        candidates = []
        for v in self.ops.running_views():
            if not v.job.is_malleable:
                continue
            floor = max(
                v.job.smallest_size, self.book.loans_on(v.job.job_id)
            )
            if v.nodes > floor:
                candidates.append(
                    ShrinkCandidate(
                        job_id=v.job.job_id, current=v.nodes, minimum=floor
                    )
                )
        plan = plan_even_shrink(candidates, deficit)
        if plan is None:
            return False
        for job_id, take in sorted(plan.items()):
            self.ops.shrink_running_malleable(job_id, take)
            self.ledger.add(
                Lease(
                    od_job_id=od_job.job_id,
                    lender_job_id=job_id,
                    nodes=take,
                    kind=LeaseKind.SHRUNK,
                )
            )
        return True

    def _try_preempt(self, od_job: Job, res: Reservation) -> bool:
        """PAA step: preempt cheapest victims to cover the deficit."""
        deficit = res.need - res.held
        candidates = []
        for v in self.ops.running_views():
            if v.job.is_ondemand:
                continue
            usable = v.nodes - self.book.loans_on(v.job.job_id)
            if usable <= 0:
                continue
            candidates.append(
                VictimCandidate(
                    job_id=v.job.job_id,
                    nodes=usable,
                    loss=v.preemption_loss(self.ops.now),
                )
            )
        victims = select_victims(candidates, deficit)
        if victims is None:
            return False
        for victim in victims:
            if res.held >= res.need:
                break
            released = self.ops.preempt_running_job(
                victim.job_id, reason="paa-arrival"
            )
            claimed = self.on_job_release(
                victim.job_id, released, claim_for=res.od_job_id
            )
            if claimed > 0:
                self.ledger.add(
                    Lease(
                        od_job_id=od_job.job_id,
                        lender_job_id=victim.job_id,
                        nodes=claimed,
                        kind=LeaseKind.PREEMPTED,
                    )
                )
        return True

    def _launch(self, job: Job, res: Reservation) -> None:
        """Start the on-demand job on its secured nodes."""
        if res.held < res.need:
            raise InvariantViolation(
                f"on-demand job {job.job_id}: launch with held={res.held} "
                f"< need={res.need}"
            )
        # Melt the holding back into the free pool, then allocate from it.
        self.book.deactivate(job.job_id)
        self.ops.start_od_job(job)

    # ------------------------------------------------------------------
    # Queue-side retry for on-demand jobs that missed instant start
    # ------------------------------------------------------------------
    def try_start_queued_od(self, job: Job) -> bool:
        """Called by the schedule pass for waiting on-demand jobs.

        Only used when a mechanism is active (baseline on-demand jobs go
        through the ordinary policy/backfill path instead).
        """
        res = self.book.get(job.job_id)
        if res is None:
            if self.ops.usable_free() >= job.size:
                self.ops.start_od_job(job)
                return True
            return False
        self._fill_from_free(res)
        if res.held >= res.need:
            self._launch(job, res)
            return True
        return False

    # ------------------------------------------------------------------
    # Timeout (§III-B.4)
    # ------------------------------------------------------------------
    def on_reservation_timeout(self, od_job_id: int) -> None:
        """Release reserved nodes for a no-show on-demand job."""
        res = self.book.get(od_job_id)
        if res is None or res.arrived:
            return
        self.book.deactivate(od_job_id)
        self.absorb_free()
        # held nodes melted back into (or moved within) the free pool
        self.ops.mark_sched_dirty()

    # ------------------------------------------------------------------
    # Completion (§III-B.3)
    # ------------------------------------------------------------------
    def on_od_completion(self, job: Job) -> None:
        """Return leased nodes to lenders; resume or expand them."""
        self.book.deactivate(job.job_id)
        for lease in self.ledger.settle(job.job_id):
            lender = self.ops.lookup_job(lease.lender_job_id)
            if lender is None:
                # lender already completed (and, in a streamed run, was
                # retired): its returned nodes simply melt into the pool
                continue
            if lender.state is JobState.QUEUED and lender.stats.preemptions > 0:
                usable = self.ops.usable_free()
                if usable >= lender.smallest_size:
                    nodes = min(lender.max_size, usable)
                    self.ops.resume_from_queue(lender, nodes)
                    self.lease_resumes += 1
            elif lender.state is JobState.RUNNING and lease.kind is LeaseKind.SHRUNK:
                give = min(lease.nodes, self.ops.usable_free())
                if give > 0:
                    self.ops.expand_running_malleable(lender.job_id, give)
                    self.lease_expands += 1
            # Otherwise the lender is done or already running again; the
            # returned nodes melt into the common pool.
        self.absorb_free()

    # ------------------------------------------------------------------
    # Node-release plumbing
    # ------------------------------------------------------------------
    def on_job_release(
        self, job_id: int, released: int, claim_for: Optional[int] = None
    ) -> int:
        """Distribute released nodes; returns the targeted claim captured."""
        claimed = self.book.on_job_release(job_id, released, claim_for=claim_for)
        self.absorb_free()
        return claimed

    def absorb_free(self) -> None:
        """Let CUA-style collectors soak up whatever is now usable-free."""
        self.book.absorb_free(self.ops.usable_free())
