"""The six hybrid scheduling mechanisms (§III-B).

Advance-notice strategies (what happens when an on-demand job announces
itself 15-30 minutes ahead of arrival):

* **N** — do nothing; handle the job when it actually arrives.
* **CUA** — reserve currently-free nodes, then passively *collect* nodes
  released by finishing jobs until the request is fulfilled or the job
  arrives.  Competing on-demand jobs are served earliest-notice-first.
* **CUP** — reserve currently-free nodes, *earmark* running jobs whose
  estimated end precedes the predicted arrival, and plan preemptions for
  any remainder (rigid victims immediately after a checkpoint).

Arrival strategies (what happens the moment the job actually arrives, if
free + reserved nodes are still insufficient):

* **PAA** — preempt running jobs in ascending preemption-overhead order.
* **SPAA** — first try to *shrink* all running malleable jobs evenly down
  toward their minimum sizes; if the shrink supply cannot cover the
  deficit, fall back to PAA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.util.errors import ConfigurationError


class NoticeStrategy(enum.Enum):
    """Advance-notice handling strategy."""

    NOTHING = "N"
    COLLECT_UNTIL_ACTUAL = "CUA"
    COLLECT_UNTIL_PREDICTED = "CUP"


class ArrivalStrategy(enum.Enum):
    """Actual-arrival handling strategy."""

    PREEMPT = "PAA"
    SHRINK_PREEMPT = "SPAA"


@dataclass(frozen=True)
class Mechanism:
    """A (notice, arrival) strategy pair, e.g. ``CUA&SPAA``."""

    notice: NoticeStrategy
    arrival: ArrivalStrategy

    @property
    def name(self) -> str:
        return f"{self.notice.value}&{self.arrival.value}"

    @staticmethod
    def parse(name: str) -> "Mechanism":
        """Parse ``"CUP&PAA"``-style names (case-insensitive)."""
        try:
            notice_s, arrival_s = name.upper().replace(" ", "").split("&")
            notice = NoticeStrategy(notice_s)
            arrival = ArrivalStrategy(arrival_s)
        except (ValueError, KeyError) as exc:
            valid = ", ".join(m.name for m in ALL_MECHANISMS)
            raise ConfigurationError(
                f"unknown mechanism {name!r}; expected one of: {valid}"
            ) from exc
        return Mechanism(notice, arrival)

    def __str__(self) -> str:
        return self.name


#: The six mechanisms in the order the paper's figures present them.
ALL_MECHANISMS: List[Mechanism] = [
    Mechanism(NoticeStrategy.NOTHING, ArrivalStrategy.PREEMPT),
    Mechanism(NoticeStrategy.NOTHING, ArrivalStrategy.SHRINK_PREEMPT),
    Mechanism(NoticeStrategy.COLLECT_UNTIL_ACTUAL, ArrivalStrategy.PREEMPT),
    Mechanism(NoticeStrategy.COLLECT_UNTIL_ACTUAL, ArrivalStrategy.SHRINK_PREEMPT),
    Mechanism(NoticeStrategy.COLLECT_UNTIL_PREDICTED, ArrivalStrategy.PREEMPT),
    Mechanism(NoticeStrategy.COLLECT_UNTIL_PREDICTED, ArrivalStrategy.SHRINK_PREEMPT),
]
