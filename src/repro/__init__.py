"""repro — reproduction of "Hybrid Workload Scheduling on HPC Systems".

Fan, Lan, Rich, Allcock, Papka (IPDPS 2022, arXiv:2109.05412): six
mechanisms for co-scheduling **on-demand**, **rigid**, and **malleable**
jobs on a single HPC system, evaluated by trace-driven discrete-event
simulation on Theta-like workloads.

Quickstart::

    from repro import (
        Mechanism, SimConfig, Simulation, generate_trace, theta_spec,
        clone_jobs, summarize,
    )

    trace = generate_trace(theta_spec(days=7), seed=0)
    result = Simulation(
        clone_jobs(trace), SimConfig(), Mechanism.parse("CUA&SPAA")
    ).run()
    print(summarize(result).instant_start_rate)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.mechanisms import (
    ALL_MECHANISMS,
    ArrivalStrategy,
    Mechanism,
    NoticeStrategy,
)
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobState, JobType, NoticeClass
from repro.sim.failures import FailureModel
from repro.metrics.summary import SummaryMetrics, average_summaries, summarize
from repro.sched.fcfs import FcfsPolicy, LjfPolicy, SjfPolicy
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation, SimulationResult
from repro.workload.spec import (
    NOTICE_MIXES,
    NoticeMix,
    W1,
    W2,
    W3,
    W4,
    W5,
    WorkloadSpec,
    theta_spec,
)
from repro.workload.theta import ThetaWorkloadGenerator, generate_trace
from repro.workload.trace import clone_jobs, load_trace_csv, save_trace_csv

__version__ = "1.0.0"

__all__ = [
    "ALL_MECHANISMS",
    "ArrivalStrategy",
    "Mechanism",
    "NoticeStrategy",
    "CheckpointModel",
    "FailureModel",
    "Job",
    "JobState",
    "JobType",
    "NoticeClass",
    "SummaryMetrics",
    "average_summaries",
    "summarize",
    "FcfsPolicy",
    "SjfPolicy",
    "LjfPolicy",
    "SimConfig",
    "Simulation",
    "SimulationResult",
    "NOTICE_MIXES",
    "NoticeMix",
    "W1",
    "W2",
    "W3",
    "W4",
    "W5",
    "WorkloadSpec",
    "theta_spec",
    "ThetaWorkloadGenerator",
    "generate_trace",
    "clone_jobs",
    "load_trace_csv",
    "save_trace_csv",
    "__version__",
]
