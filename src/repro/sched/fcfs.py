"""Concrete queue-ordering policies.

FCFS is the paper's default (§IV-B).  Preempted jobs are resubmitted with
their *original* submit time, so under FCFS they naturally return near the
front of the queue — exactly the behaviour §III-B.2 describes.

SJF and LJF are not evaluated in the paper; they exist for the ablation
benchmarks that show the mechanisms compose with any ordering policy.
"""

from __future__ import annotations

from typing import Tuple

from repro.jobs.job import Job
from repro.sched.policy import SchedulingPolicy


class FcfsPolicy(SchedulingPolicy):
    """First-come-first-serve: ascending original submission time."""

    name = "fcfs"

    def key(self, job: Job, now: float) -> Tuple:
        return (job.submit_time,)


class SjfPolicy(SchedulingPolicy):
    """Shortest-job-first by the user's runtime estimate."""

    name = "sjf"

    def key(self, job: Job, now: float) -> Tuple:
        return (job.estimate, job.submit_time)


class LjfPolicy(SchedulingPolicy):
    """Largest-job-first by node request (drains wide jobs early)."""

    name = "ljf"

    def key(self, job: Job, now: float) -> Tuple:
        return (-job.size, job.submit_time)
