"""Batch scheduling policies (the substrate the mechanisms plug into).

The paper's mechanisms are "designed to be used in conjunction with the
existing scheduling policies: while a scheduling policy determines the
order of waiting jobs, our mechanisms manipulate the running jobs".

* :class:`~repro.sched.policy.SchedulingPolicy` — queue-ordering interface.
* :class:`~repro.sched.fcfs.FcfsPolicy` — first-come-first-serve (default).
* :class:`~repro.sched.fcfs.SjfPolicy` / :class:`~repro.sched.fcfs.LjfPolicy`
  — shortest/largest-job-first, used by ablation benchmarks.
* :class:`~repro.sched.ewt.EwtPolicy` — PRB/EWT aging priority
  [BorghesiCLMB15]; :class:`~repro.sched.score.ScorePolicy` —
  composable weighted-sum priority [GalleguillosMOD17].
* :mod:`repro.sched.registry` — the policy registry: every dispatcher
  (ordering + optional forced planner) behind ``register_policy`` /
  ``get_policy`` / ``list_policies`` / ``policy_names``.
* :mod:`repro.sched.easy` — EASY backfilling: shadow-time reservation for
  the queue head, conservative backfill of later jobs, and loans of
  reserved-idle nodes to backfilled jobs (§III-B.1).
"""

from repro.sched.conservative import AvailabilityProfile, ConservativeBackfillPlanner
from repro.sched.easy import BackfillPlanner, StartDecision
from repro.sched.ewt import EwtPolicy
from repro.sched.fcfs import FcfsPolicy, LjfPolicy, SjfPolicy
from repro.sched.policy import SchedulingPolicy
from repro.sched.registry import (
    Dispatcher,
    get_policy,
    list_policies,
    policy_names,
    register_policy,
    resolve_dispatcher,
)
from repro.sched.score import ScorePolicy

__all__ = [
    "AvailabilityProfile",
    "ConservativeBackfillPlanner",
    "BackfillPlanner",
    "StartDecision",
    "Dispatcher",
    "EwtPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "LjfPolicy",
    "SchedulingPolicy",
    "ScorePolicy",
    "get_policy",
    "list_policies",
    "policy_names",
    "register_policy",
    "resolve_dispatcher",
]
