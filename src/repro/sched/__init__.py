"""Batch scheduling policies (the substrate the mechanisms plug into).

The paper's mechanisms are "designed to be used in conjunction with the
existing scheduling policies: while a scheduling policy determines the
order of waiting jobs, our mechanisms manipulate the running jobs".

* :class:`~repro.sched.policy.SchedulingPolicy` — queue-ordering interface.
* :class:`~repro.sched.fcfs.FcfsPolicy` — first-come-first-serve (default).
* :class:`~repro.sched.fcfs.SjfPolicy` / :class:`~repro.sched.fcfs.LjfPolicy`
  — shortest/largest-job-first, used by ablation benchmarks.
* :mod:`repro.sched.easy` — EASY backfilling: shadow-time reservation for
  the queue head, conservative backfill of later jobs, and loans of
  reserved-idle nodes to backfilled jobs (§III-B.1).
"""

from repro.sched.conservative import AvailabilityProfile, ConservativeBackfillPlanner
from repro.sched.easy import BackfillPlanner, StartDecision
from repro.sched.fcfs import FcfsPolicy, LjfPolicy, SjfPolicy
from repro.sched.policy import SchedulingPolicy

__all__ = [
    "AvailabilityProfile",
    "ConservativeBackfillPlanner",
    "BackfillPlanner",
    "StartDecision",
    "FcfsPolicy",
    "SjfPolicy",
    "LjfPolicy",
    "SchedulingPolicy",
]
