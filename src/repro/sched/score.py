"""Composable score-based priority policy.

The score-based dispatching surveyed in [GalleguillosMOD17] ranks the
queue by a weighted sum of job features.  Here the score is

    score(job) =   wait_weight     * age(job)
                 + size_weight     * size
                 + walltime_weight * estimate
                 + notice_weight   * notice_rank(job)

and the queue is ordered by descending score (submit time, then job id,
break ties).  ``notice_rank`` rewards on-demand jobs by how much
advance notice they gave (accurate > early > late > none); batch jobs
rank 0.

The wait-age term is evaluated in a *now-free* form: ``age = now -
submit`` differs between two jobs by a constant independent of ``now``,
so ordering by score is identical to ordering by the submit-anchored
score with the common ``wait_weight * now`` shift dropped.  Dropping it
makes the sort key exactly reproducible at any clock value — the policy
is genuinely time-invariant (the queue order can only change when the
queue changes), so the simulator's incremental pass skipping stays
fully effective.

The classic orderings are degenerate configurations (byte-identical
plans, asserted by the registry tests):

==================  =============================================
``fcfs``            ``wait_weight=1`` (everything else 0)
``sjf``             ``walltime_weight=-1`` (everything else 0)
``ljf``             ``size_weight=1`` (everything else 0)
==================  =============================================
"""

from __future__ import annotations

from typing import Tuple

from repro.jobs.job import Job, NoticeClass
from repro.sched.policy import SchedulingPolicy

#: more advance notice -> higher rank -> larger score bonus
NOTICE_RANKS = {
    NoticeClass.NONE: 1.0,
    NoticeClass.LATE: 2.0,
    NoticeClass.EARLY: 3.0,
    NoticeClass.ACCURATE: 4.0,
}


class ScorePolicy(SchedulingPolicy):
    """Descending weighted-sum priority (subsumes FCFS/SJF/LJF)."""

    name = "score"

    def __init__(
        self,
        wait_weight: float = 1.0,
        size_weight: float = 0.0,
        walltime_weight: float = 0.0,
        notice_weight: float = 0.0,
    ) -> None:
        self.wait_weight = float(wait_weight)
        self.size_weight = float(size_weight)
        self.walltime_weight = float(walltime_weight)
        self.notice_weight = float(notice_weight)

    @staticmethod
    def notice_rank(job: Job) -> float:
        if not job.is_ondemand:
            return 0.0
        return NOTICE_RANKS[job.notice_class]

    def key(self, job: Job, now: float) -> Tuple:
        # submit-anchored score: the common `wait_weight * now` term is
        # dropped (it shifts every job's score equally), which is what
        # makes the key independent of `now` down to the last bit
        score = (
            -self.wait_weight * job.submit_time
            + self.size_weight * job.size
            + self.walltime_weight * job.estimate
            + self.notice_weight * self.notice_rank(job)
        )
        return (-score, job.submit_time)
