"""The shared scheduling-availability layer (incremental core).

Every scheduling pass needs the same future-supply question answered:
*when do how many nodes come free?*  The seed implementation re-derived
that from scratch inside each planner call — EASY re-sorted every
running job's predicted end to find the head's shadow time, and
conservative backfilling rebuilt its whole step-function profile — so a
pass cost O(running · log running) even when nothing relevant had
changed since the last one.  This module makes the availability state
explicit and *incrementally maintained*:

:class:`AvailabilityTimeline`
    The persistent structure: one ``(predicted_release, nodes)`` block
    per running job, kept sorted **in place** across events.  The
    simulator updates it through its mutation funnel (start / finish /
    preempt / resize / failure-restart), so a scheduling pass never
    sorts — it only reads.

:class:`ProfileView`
    One scheduling instant's read surface, handed to the planners: the
    timeline plus a small per-pass *overlay* of reservation
    pseudo-blocks (their release times depend on ``now``, so they
    cannot live in the persistent structure).  Shadow time and the
    extra-node budget (EASY) and the full step-function profile
    (conservative) are queries on this view.  ``from_blocks`` builds a
    view from a plain block list — the ``force_full_replan`` escape
    hatch and unit tests use it; it re-sorts every call, which is
    exactly the seed behaviour the benchmark suite compares against.

:class:`AvailabilityProfile`
    The mutable free-node step function conservative backfilling plans
    against (moved here from :mod:`repro.sched.conservative`); building
    it from an already-sorted view skips the per-pass sort.

Block iteration order is ``(release_time, nodes)`` — the exact order the
seed's ``sorted(running_blocks)`` produced — so incremental and
full-replan planning make bit-identical decisions.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.util.errors import InvariantViolation

EPS = 1e-6

#: one future supply step: (release_time, nodes_released)
Block = Tuple[float, int]


@dataclass(frozen=True)
class ShadowInfo:
    """The head job's EASY reservation: when it can start, and the slack."""

    time: float
    extra_nodes: int


class AvailabilityTimeline:
    """Sorted ``(release, nodes)`` blocks for running jobs, updated in place.

    One block per running job, keyed by job id.  ``set_block`` is called
    on start, resize, and failure-restart (the predicted finish moved);
    ``remove_block`` on finish and preemption.  Both are O(log n) search
    plus an O(n) memmove on a flat list — far cheaper than the O(n log n)
    re-sort every scheduling pass used to pay, and the read side
    (:meth:`releases`) is a plain pre-sorted iteration.

    The sort key is ``(release, nodes, key)``: ties replicate the seed's
    ``sorted(running_blocks)`` tuple order, with the job key as a final
    deterministic tiebreaker (equal ``(release, nodes)`` entries are
    interchangeable to every query).
    """

    __slots__ = ("_blocks", "_order")

    def __init__(self) -> None:
        #: key -> (release_time, nodes)
        self._blocks: Dict[int, Block] = {}
        #: sorted [(release_time, nodes, key)]
        self._order: List[Tuple[float, int, int]] = []

    def __len__(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    def set_block(self, key: int, release: float, nodes: int) -> None:
        """Add or move the block for *key* (idempotent upsert)."""
        old = self._blocks.get(key)
        if old is not None:
            self._remove_entry(old, key)
        self._blocks[key] = (release, nodes)
        insort(self._order, (release, nodes, key))

    def remove_block(self, key: int) -> None:
        """Drop the block for *key*; raises if it was never added."""
        old = self._blocks.pop(key, None)
        if old is None:
            raise InvariantViolation(
                f"availability timeline has no block for key {key}"
            )
        self._remove_entry(old, key)

    def _remove_entry(self, block: Block, key: int) -> None:
        entry = (block[0], block[1], key)
        i = bisect_left(self._order, entry)
        if i >= len(self._order) or self._order[i] != entry:
            raise InvariantViolation(
                f"availability timeline drifted: expected entry {entry} "
                "missing from the sorted order"
            )
        del self._order[i]

    # ------------------------------------------------------------------
    def releases(self) -> Iterator[Block]:
        """All blocks in ``(release, nodes)`` order."""
        for release, nodes, _key in self._order:
            yield release, nodes

    def blocks(self) -> Dict[int, Block]:
        """Snapshot of ``key -> (release, nodes)`` (validation/debugging)."""
        return dict(self._blocks)

    def validate_against(self, expected: Dict[int, Block]) -> None:
        """Cross-check against a from-scratch rebuild (invariant runs)."""
        if self._blocks != expected:
            missing = expected.keys() - self._blocks.keys()
            extra = self._blocks.keys() - expected.keys()
            drifted = {
                k
                for k in expected.keys() & self._blocks.keys()
                if expected[k] != self._blocks[k]
            }
            raise InvariantViolation(
                "availability timeline out of sync with the running set: "
                f"missing={sorted(missing)} stale={sorted(extra)} "
                f"drifted={sorted(drifted)}"
            )
        if len(self._order) != len(self._blocks) or any(
            self._blocks.get(k) != (t, n) for t, n, k in self._order
        ):
            raise InvariantViolation(
                "availability timeline order list disagrees with its blocks"
            )


class ProfileView:
    """Availability at one scheduling instant, as the planners consume it.

    ``free`` is the usable free pool right now (cluster free minus all
    reserved holdings); :meth:`releases` walks future supply in
    ``(release, nodes)`` order.  Backed either by the shared
    :class:`AvailabilityTimeline` plus a small per-pass reservation
    overlay (incremental mode — no sorting beyond the tiny overlay) or
    by a plain re-sorted block list (:meth:`from_blocks`; the
    ``force_full_replan`` baseline and unit tests).
    """

    __slots__ = ("now", "free", "_timeline", "_overlay", "_static")

    def __init__(
        self,
        now: float,
        free: int,
        timeline: Optional[AvailabilityTimeline] = None,
        overlay: Sequence[Block] = (),
    ) -> None:
        self.now = now
        self.free = free
        self._timeline = timeline
        self._overlay: List[Block] = sorted(overlay) if overlay else []
        self._static: Optional[List[Block]] = None

    @classmethod
    def from_blocks(
        cls, now: float, free: int, blocks: Iterable[Block]
    ) -> "ProfileView":
        """A view over a plain block list (re-sorted on every call)."""
        view = cls(now, free)
        view._static = sorted(blocks)
        return view

    def reset(
        self, now: float, free: int, overlay: Optional[List[Block]] = None
    ) -> "ProfileView":
        """Re-point this view at a new scheduling instant, in place.

        The simulator owns one timeline-backed view (and one overlay
        list) for the whole run and re-seats it per pass instead of
        constructing a fresh view — planners never retain the view
        beyond their ``plan()`` call, so reuse is safe and keeps the
        hot path allocation-free.  *overlay* is sorted **in place** and
        adopted without copying.  Not valid on ``from_blocks`` views
        (the full-replan escape hatch rebuilds those per pass by
        design).
        """
        if self._static is not None:
            raise InvariantViolation(
                "reset() on a static-block ProfileView; only "
                "timeline-backed views are reusable"
            )
        self.now = now
        self.free = free
        if overlay:
            overlay.sort()
            self._overlay = overlay
        else:
            self._overlay = overlay if overlay is not None else []
        return self

    def rebind(self, timeline: Optional[AvailabilityTimeline]) -> "ProfileView":
        """Re-point this view at a different simulation's timeline.

        The per-worker scratch (:class:`~repro.sim.simulator.SimScratch`)
        carries one view across the many simulations a campaign worker
        executes; each new :class:`~repro.sim.simulator.Simulation`
        rebinds it to its own freshly built timeline before any pass
        runs.  Clears the overlay and zeroes the instant — the first
        ``reset()`` of the run re-seats both.  Not valid on
        ``from_blocks`` views.
        """
        if self._static is not None:
            raise InvariantViolation(
                "rebind() on a static-block ProfileView; only "
                "timeline-backed views are reusable"
            )
        self._timeline = timeline
        self._overlay = []
        self.now = 0.0
        self.free = 0
        return self

    # ------------------------------------------------------------------
    def releases(self) -> Iterator[Block]:
        """Future supply steps in ``(release, nodes)`` order."""
        if self._static is not None:
            return iter(self._static)
        timeline = (
            self._timeline.releases() if self._timeline is not None else iter(())
        )
        if not self._overlay:
            return timeline
        return heapq.merge(timeline, iter(self._overlay))

    def shadow(self, head_need: int, free: Optional[int] = None) -> ShadowInfo:
        """Earliest time *head_need* nodes are free, plus the slack then.

        Walks the releases in time order accumulating freed nodes until
        the head fits.  If even all releases cannot satisfy the head
        (only possible when reservations pseudo-block nodes forever),
        the shadow is infinite and every backfill qualifies via the
        extra-node branch only.  *free* overrides the view's free pool —
        EASY phase 1 consumes free nodes before the shadow is computed.
        """
        avail = self.free if free is None else free
        if head_need <= avail:
            return ShadowInfo(time=self.now, extra_nodes=avail - head_need)
        for release, nodes in self.releases():
            avail += nodes
            if avail >= head_need:
                return ShadowInfo(
                    time=max(release, self.now), extra_nodes=avail - head_need
                )
        return ShadowInfo(time=math.inf, extra_nodes=avail - head_need)

    def build_profile(self) -> "AvailabilityProfile":
        """The mutable step-function profile conservative planning uses."""
        return AvailabilityProfile.from_sorted(self.now, self.free, self.releases())


class AvailabilityProfile:
    """Free-node step function over [now, inf).

    Kept as parallel lists ``times`` / ``avail`` where ``avail[i]`` holds
    on ``[times[i], times[i+1])``; the last segment extends to infinity.
    """

    def __init__(self, now: float, free: int, releases: Sequence[Block]):
        points: Dict[float, int] = {}
        for t, nodes in releases:
            key = max(t, now)
            points[key] = points.get(key, 0) + nodes
        self.times: List[float] = [now]
        self.avail: List[int] = [free]
        level = free
        for t in sorted(points):
            if t <= now + EPS:
                # already released (defensive; callers pass future ends)
                self.avail[0] += points[t]
                level = self.avail[0]
                continue
            level += points[t]
            self.times.append(t)
            self.avail.append(level)

    @classmethod
    def from_sorted(
        cls, now: float, free: int, releases: Iterable[Block]
    ) -> "AvailabilityProfile":
        """Build from releases already in time order, skipping the sort."""
        prof = cls.__new__(cls)
        prof.times = [now]
        prof.avail = [free]
        level = free
        for t, nodes in releases:
            if t <= now + EPS:
                prof.avail[0] += nodes
                if len(prof.times) == 1:
                    level = prof.avail[0]
                continue
            level += nodes
            if prof.times[-1] == t:
                prof.avail[-1] = level
            else:
                prof.times.append(t)
                prof.avail.append(level)
        return prof

    def earliest_start(self, nodes: int, duration: float) -> float:
        """Earliest time *nodes* nodes stay free for *duration* seconds."""
        i = 0
        while i < len(self.times):
            if self.avail[i] < nodes:
                i += 1
                continue
            start = self.times[i]
            end = start + duration
            # check the window [start, end) stays above `nodes`
            j = i + 1
            ok = True
            while j < len(self.times) and self.times[j] < end - EPS:
                if self.avail[j] < nodes:
                    ok = False
                    break
                j += 1
            if ok:
                return start
            i = j  # first violation: no point retrying inside the window
        raise AssertionError(
            "unreachable: the final profile segment extends to infinity"
        )

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract *nodes* over [start, start+duration)."""
        end = start + duration
        self._insert_breakpoint(start)
        self._insert_breakpoint(end)
        for i, t in enumerate(self.times):
            if start - EPS <= t < end - EPS:
                self.avail[i] -= nodes
                if self.avail[i] < 0:
                    raise AssertionError(
                        f"profile went negative at t={t}: {self.avail[i]}"
                    )

    def _insert_breakpoint(self, t: float) -> None:
        if t <= self.times[0] + EPS:
            return
        i = bisect_left(self.times, t - EPS)
        if i < len(self.times) and abs(self.times[i] - t) <= EPS:
            return
        if i == len(self.times):
            self.times.append(t)
            self.avail.append(self.avail[-1])
        else:
            self.times.insert(i, t)
            self.avail.insert(i, self.avail[i - 1])
