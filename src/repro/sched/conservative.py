"""Conservative backfilling (substrate extension; EASY is the default).

EASY (§II-B) reserves a start time only for the *head* of the queue, so a
backfill can delay anyone behind the head.  Conservative backfilling gives
**every** queued job a reservation in queue order: a job may only jump
ahead if it delays none of the reservations made before it.  The paper
evaluates EASY only; this planner exists for the ablation suite, and as
the natural "stricter fairness" point of comparison for the mechanisms.

Implementation: a step-function *availability profile* over future time
(:class:`repro.sched.profile.AvailabilityProfile`), materialised from the
scheduling instant's :class:`~repro.sched.profile.ProfileView` — in
incremental mode that is a sort-free copy of the shared availability
timeline.  Jobs are inserted in queue order at the earliest feasible
start; a job whose reserved start is *now* actually starts.  Malleable
jobs are reserved at their maximum size (choosing per-reservation sizes
would make the profile search quadratic in sizes for marginal benefit);
reserved-idle loans are an EASY-specific device and are not used here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.jobs.job import Job
from repro.sched.easy import StartDecision, WallPredictor
from repro.sched.profile import AvailabilityProfile, ProfileView

__all__ = ["AvailabilityProfile", "ConservativeBackfillPlanner"]

EPS = 1e-6


class ConservativeBackfillPlanner:
    """Plan starts so no earlier-queued job's reservation is delayed.

    Drop-in alternative to :class:`repro.sched.easy.BackfillPlanner`
    (same ``plan`` signature; the loanable pool is ignored).
    """

    def __init__(self, flexible_malleable: bool = True) -> None:
        # kept for signature parity; reservations always use max size
        self.flexible_malleable = flexible_malleable

    def plan(
        self,
        profile: ProfileView,
        ordered_queue: Sequence[Job],
        loanable: Sequence[Tuple[int, int]],
        predict_wall: WallPredictor,
    ) -> List[StartDecision]:
        now = profile.now
        working = profile.build_profile()
        decisions: List[StartDecision] = []
        blocked_seen = False
        for job in ordered_queue:
            nodes = job.size
            wall = predict_wall(job, nodes)
            start = working.earliest_start(nodes, wall)
            working.reserve(start, wall, nodes)
            if start <= now + EPS:
                decisions.append(
                    StartDecision(
                        job=job,
                        nodes=nodes,
                        free_used=nodes,
                        # a start past an earlier (still waiting) job is a
                        # backfill; in-order starts are not
                        backfilled=blocked_seen,
                    )
                )
            else:
                blocked_seen = True
        return decisions
