"""Conservative backfilling (substrate extension; EASY is the default).

EASY (§II-B) reserves a start time only for the *head* of the queue, so a
backfill can delay anyone behind the head.  Conservative backfilling gives
**every** queued job a reservation in queue order: a job may only jump
ahead if it delays none of the reservations made before it.  The paper
evaluates EASY only; this planner exists for the ablation suite, and as
the natural "stricter fairness" point of comparison for the mechanisms.

Implementation: a step-function *availability profile* over future time,
built from the predicted releases of running jobs.  Jobs are inserted in
queue order at the earliest feasible start; a job whose reserved start is
*now* actually starts.  Malleable jobs are reserved at their maximum size
(choosing per-reservation sizes would make the profile search quadratic
in sizes for marginal benefit); reserved-idle loans are an EASY-specific
device and are not used here.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.jobs.job import Job
from repro.sched.easy import StartDecision, WallPredictor

EPS = 1e-6


class AvailabilityProfile:
    """Free-node step function over [now, inf).

    Kept as parallel lists ``times`` / ``avail`` where ``avail[i]`` holds
    on ``[times[i], times[i+1])``; the last segment extends to infinity.
    """

    def __init__(self, now: float, free: int, releases: Sequence[Tuple[float, int]]):
        points = {}
        for t, nodes in releases:
            key = max(t, now)
            points[key] = points.get(key, 0) + nodes
        self.times: List[float] = [now]
        self.avail: List[int] = [free]
        level = free
        for t in sorted(points):
            if t <= now + EPS:
                # already released (defensive; callers pass future ends)
                self.avail[0] += points[t]
                level = self.avail[0]
                continue
            level += points[t]
            self.times.append(t)
            self.avail.append(level)

    def earliest_start(self, nodes: int, duration: float) -> float:
        """Earliest time *nodes* nodes stay free for *duration* seconds."""
        i = 0
        while i < len(self.times):
            if self.avail[i] < nodes:
                i += 1
                continue
            start = self.times[i]
            end = start + duration
            # check the window [start, end) stays above `nodes`
            j = i + 1
            ok = True
            while j < len(self.times) and self.times[j] < end - EPS:
                if self.avail[j] < nodes:
                    ok = False
                    break
                j += 1
            if ok:
                return start
            i = j  # first violation: no point retrying inside the window
        raise AssertionError(
            "unreachable: the final profile segment extends to infinity"
        )

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract *nodes* over [start, start+duration)."""
        end = start + duration
        self._insert_breakpoint(start)
        self._insert_breakpoint(end)
        for i, t in enumerate(self.times):
            if start - EPS <= t < end - EPS:
                self.avail[i] -= nodes
                if self.avail[i] < 0:
                    raise AssertionError(
                        f"profile went negative at t={t}: {self.avail[i]}"
                    )

    def _insert_breakpoint(self, t: float) -> None:
        if t <= self.times[0] + EPS:
            return
        for i, existing in enumerate(self.times):
            if abs(existing - t) <= EPS:
                return
            if existing > t:
                self.times.insert(i, t)
                self.avail.insert(i, self.avail[i - 1])
                return
        self.times.append(t)
        self.avail.append(self.avail[-1])


class ConservativeBackfillPlanner:
    """Plan starts so no earlier-queued job's reservation is delayed.

    Drop-in alternative to :class:`repro.sched.easy.BackfillPlanner`
    (same ``plan`` signature; the loanable pool is ignored).
    """

    def __init__(self, flexible_malleable: bool = True) -> None:
        # kept for signature parity; reservations always use max size
        self.flexible_malleable = flexible_malleable

    def plan(
        self,
        now: float,
        ordered_queue: Sequence[Job],
        free: int,
        loanable: Sequence[Tuple[int, int]],
        running_blocks: Sequence[Tuple[float, int]],
        predict_wall: WallPredictor,
    ) -> List[StartDecision]:
        profile = AvailabilityProfile(now, free, running_blocks)
        decisions: List[StartDecision] = []
        blocked_seen = False
        for job in ordered_queue:
            nodes = job.size
            wall = predict_wall(job, nodes)
            start = profile.earliest_start(nodes, wall)
            profile.reserve(start, wall, nodes)
            if start <= now + EPS:
                decisions.append(
                    StartDecision(
                        job=job,
                        nodes=nodes,
                        free_used=nodes,
                        # a start past an earlier (still waiting) job is a
                        # backfill; in-order starts are not
                        backfilled=blocked_seen,
                    )
                )
            else:
                blocked_seen = True
        return decisions
