"""Priority-Rules-Based scheduling on Estimated Waiting Time (PRB/EWT).

accasim's dispatcher catalog describes PRB scheduling "based on the
estimated waiting time of the jobs" [BorghesiCLMB15]: every job class
carries an *estimated waiting time* (EWT) — the delay its users are
assumed to tolerate — and the queue is ordered by the urgency ratio

    urgency(job, now) = (wait(job, now) + EWT(job)) / EWT(job)

descending.  A job with a small EWT (on-demand work here) overtakes
quickly; a long batch job with a generous EWT ages slowly toward the
front, so nothing starves.  The ratio grows with ``now`` — this is an
*aging* policy, so :attr:`~repro.sched.policy.SchedulingPolicy.time_invariant`
is False and the simulator never skips a scheduling pass on the
time-invariance argument (only the always-safe empty-queue skip
applies; the incremental-vs-full differential suite still holds).

Backfilling needs no special support: the policy only orders the queue,
and both planners consume the ordered queue through the unified
``plan(profile, ordered_queue, loanable, predict_wall)`` surface — the
queue head's reservation comes from ``ProfileView.shadow`` exactly as
under FCFS.
"""

from __future__ import annotations

from typing import Tuple

from repro.jobs.job import Job
from repro.sched.policy import SchedulingPolicy
from repro.util.errors import ConfigurationError
from repro.util.timeconst import HOUR, MINUTE


class EwtPolicy(SchedulingPolicy):
    """Order by descending ``(wait + EWT) / EWT`` (PRB/EWT).

    Parameters
    ----------
    ondemand_ewt_s:
        EWT of on-demand jobs — small, so their urgency explodes almost
        immediately (they are near-interactive).
    short_ewt_s / long_ewt_s:
        EWT of batch jobs whose runtime *estimate* is at most /
        above ``short_estimate_s`` — the two-class split accasim's
        workload configs use (debug/short vs production queues).
    short_estimate_s:
        Estimate threshold separating the two batch classes.
    """

    name = "prb_ewt"
    time_invariant = False

    def __init__(
        self,
        ondemand_ewt_s: float = MINUTE,
        short_ewt_s: float = 0.5 * HOUR,
        long_ewt_s: float = 2 * HOUR,
        short_estimate_s: float = HOUR,
    ) -> None:
        for label, value in (
            ("ondemand_ewt_s", ondemand_ewt_s),
            ("short_ewt_s", short_ewt_s),
            ("long_ewt_s", long_ewt_s),
        ):
            if value <= 0:
                raise ConfigurationError(f"{label} must be positive")
        if short_estimate_s < 0:
            raise ConfigurationError("short_estimate_s must be >= 0")
        self.ondemand_ewt_s = float(ondemand_ewt_s)
        self.short_ewt_s = float(short_ewt_s)
        self.long_ewt_s = float(long_ewt_s)
        self.short_estimate_s = float(short_estimate_s)

    def ewt(self, job: Job) -> float:
        """The job's class EWT (seconds of tolerable wait)."""
        if job.is_ondemand:
            return self.ondemand_ewt_s
        if job.estimate <= self.short_estimate_s:
            return self.short_ewt_s
        return self.long_ewt_s

    def key(self, job: Job, now: float) -> Tuple:
        ewt = self.ewt(job)
        urgency = (now - job.submit_time + ewt) / ewt
        return (-urgency, job.submit_time)
