"""Queue-ordering policy interface.

A policy only decides the *order* of the wait queue at each scheduling
instance; starting jobs (including EASY backfilling) and manipulating
running jobs (the paper's mechanisms) happen elsewhere.

On-demand jobs that failed to start instantly are placed "at the front of
the queue" (§III-B.2); every policy therefore sorts by a two-level key
``(not is_ondemand_retry, policy_key)``.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

from repro.jobs.job import Job


class SchedulingPolicy(abc.ABC):
    """Orders the wait queue at each scheduling instance."""

    #: short identifier used in reports
    name: str = "abstract"

    #: True when :meth:`key` ignores ``now`` — i.e. the queue order can
    #: only change when the queue itself changes.  The simulator's
    #: incremental pass skipping relies on this: a pass may be skipped
    #: after a no-op event batch only if mere passage of time cannot
    #: reorder the queue.  Set False in any aging/time-decay policy.
    time_invariant: bool = True

    @abc.abstractmethod
    def key(self, job: Job, now: float) -> Tuple:
        """Sort key for *job* (ascending).  Lower sorts earlier."""

    def order(
        self,
        queue: Sequence[Job],
        now: float,
        prioritize_ondemand: bool = True,
    ) -> List[Job]:
        """Return the queue sorted: on-demand retries first, then policy key.

        ``prioritize_ondemand=False`` (the baseline configuration) drops
        the front-of-queue boost so on-demand jobs sort like any other.
        The job id is always the final tiebreaker so ordering is total and
        deterministic.
        """
        if prioritize_ondemand:
            return sorted(
                queue,
                key=lambda j: (not j.is_ondemand, *self.key(j, now), j.job_id),
            )
        return sorted(queue, key=lambda j: (*self.key(j, now), j.job_id))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"
