"""The policy registry: every dispatcher behind one name, one surface.

A *policy* here is what a user selects on the command line or as a
campaign axis value: a queue-ordering rule, optionally bundled with a
forced backfill planner.  Each registered name maps to a factory that
builds a :class:`Dispatcher` — the ordering
:class:`~repro.sched.policy.SchedulingPolicy` plus an optional
``backfill_mode`` ("easy"/"conservative"; ``None`` inherits
``SimConfig.backfill_mode``).  Both planners already consume the same
``plan(profile, ordered_queue, loanable, predict_wall)`` surface, so a
registered policy composes with every mechanism, the incremental core,
and streaming unchanged.

Registration contract (see DESIGN.md "Policy registry"):

* the factory takes only keyword tuning knobs and must be pure — same
  params, same behaviour (cells are content-addressed on the params);
* the ordering policy may only *sort* the queue (``key``/``order``);
  it must not mutate jobs, start them, or hold cross-pass state;
* aging policies (``key`` depends on ``now`` in an order-changing way)
  must set ``time_invariant = False``.

Adding a policy::

    @register_policy("my_policy")
    def _my_policy(**params) -> Dispatcher:
        '''One-line description shown by ``list_policies``.'''
        return Dispatcher(ordering=MyPolicy(**params))

Every registry-driven test suite (invariants, replan equivalence,
streaming differentials, CI policy matrix) picks the new name up from
:func:`policy_names` with zero test edits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.sched.ewt import EwtPolicy
from repro.sched.fcfs import FcfsPolicy, LjfPolicy, SjfPolicy
from repro.sched.policy import SchedulingPolicy
from repro.sched.score import ScorePolicy
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Dispatcher:
    """A resolved policy: queue ordering + (optionally) a forced planner.

    ``backfill_mode=None`` means "inherit the simulation config's
    planner"; a non-None value overrides it, which is how the legacy
    ``easy``/``conservative`` selections live on the same registry as
    pure orderings.
    """

    ordering: SchedulingPolicy
    backfill_mode: Optional[str] = None


PolicyFactory = Callable[..., Dispatcher]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register_policy(name: str) -> Callable[[PolicyFactory], PolicyFactory]:
    """Decorator: register a dispatcher factory under ``name``."""
    if not name or not isinstance(name, str):
        raise ConfigurationError("policy name must be a non-empty string")

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"policy {name!r} is already registered"
            )
        _REGISTRY[name] = factory
        return factory

    return decorator


def policy_names() -> Tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def list_policies() -> Dict[str, str]:
    """``{name: one-line description}`` for every registered policy."""
    return {
        name: (_REGISTRY[name].__doc__ or "").strip().splitlines()[0]
        if _REGISTRY[name].__doc__
        else ""
        for name in policy_names()
    }


def get_policy(name: str, **params: object) -> Dispatcher:
    """Build the named dispatcher; unknown names list the registry."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; registered policies: "
            f"{', '.join(policy_names())}"
        ) from None
    try:
        return factory(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for policy {name!r}: {exc}"
        ) from None


def resolve_dispatcher(
    name: str, params: Optional[Mapping[str, object]] = None
) -> Dispatcher:
    """:func:`get_policy` with params as a mapping (config-file shape)."""
    return get_policy(name, **dict(params or {}))


# --- the built-in zoo --------------------------------------------------------

@register_policy("easy")
def _easy(**params: object) -> Dispatcher:
    """FCFS ordering with the EASY backfill planner (paper default)."""
    return Dispatcher(
        ordering=FcfsPolicy(**params), backfill_mode="easy"  # type: ignore[arg-type]
    )


@register_policy("conservative")
def _conservative(**params: object) -> Dispatcher:
    """FCFS ordering with conservative backfilling (every job reserved)."""
    return Dispatcher(
        ordering=FcfsPolicy(**params), backfill_mode="conservative"  # type: ignore[arg-type]
    )


@register_policy("fcfs")
def _fcfs(**params: object) -> Dispatcher:
    """First-come-first-serve ordering; planner from the sim config."""
    return Dispatcher(ordering=FcfsPolicy(**params))  # type: ignore[arg-type]


@register_policy("sjf")
def _sjf(**params: object) -> Dispatcher:
    """Shortest-job-first by runtime estimate; planner from the config."""
    return Dispatcher(ordering=SjfPolicy(**params))  # type: ignore[arg-type]


@register_policy("ljf")
def _ljf(**params: object) -> Dispatcher:
    """Largest-job-first by node request; planner from the config."""
    return Dispatcher(ordering=LjfPolicy(**params))  # type: ignore[arg-type]


@register_policy("prb_ewt")
def _prb_ewt(**params: object) -> Dispatcher:
    """PRB/EWT aging: descending (wait + EWT) / EWT [BorghesiCLMB15]."""
    return Dispatcher(ordering=EwtPolicy(**params))  # type: ignore[arg-type]


@register_policy("score")
def _score(**params: object) -> Dispatcher:
    """Weighted-sum priority (wait age, size, walltime, notice class)."""
    return Dispatcher(ordering=ScorePolicy(**params))  # type: ignore[arg-type]
