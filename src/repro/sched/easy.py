"""EASY backfilling with reservation-aware loans (§II-B, §III-B.1).

Classic EASY: jobs start in policy order while they fit; when the queue
head does not fit, it receives a *shadow* reservation at the earliest time
enough nodes will be free (based on running jobs' predicted ends), and
later jobs may jump ahead iff they do not delay that reservation — either
they finish before the shadow time or they only use nodes the head will
not need ("extra" nodes).

Two paper-specific twists:

* **Reserved-node loans.**  Nodes held idle for an on-demand job may be
  used by *backfilled* jobs (never by head-of-queue starts); the borrower
  is preempted the instant the on-demand job arrives.  Loaned nodes are
  invisible to the shadow computation (they are pledged to the on-demand
  job, modelled as a pseudo-running block), so borrowing never delays the
  head — only the borrower's draw on the genuinely-free pool is checked
  against the extra-node budget.
* **Malleable sizing.**  A malleable job can start anywhere in
  ``[min_size, max_size]`` with linear speedup, so the planner picks the
  largest feasible size; when a head-fit fails it retries a smaller size
  that fits the backfill window or the extra-node budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.jobs.job import Job
from repro.sched.profile import ProfileView, ShadowInfo

__all__ = [
    "BackfillPlanner",
    "ShadowInfo",
    "StartDecision",
    "WallPredictor",
]

EPS = 1e-6

#: Callable giving the predicted wall-clock duration (setup + estimated
#: remaining compute + checkpoint overheads) of *job* started now on
#: *nodes* nodes.  Provided by the simulator, which knows execution state.
WallPredictor = Callable[[Job, int], float]


@dataclass
class StartDecision:
    """One job start chosen by the planner.

    ``free_used + sum(loans.values()) == nodes``; ``loans`` maps
    reservation id -> nodes borrowed from that reservation's idle holding.
    """

    job: Job
    nodes: int
    free_used: int
    loans: Dict[int, int] = field(default_factory=dict)
    backfilled: bool = False


class BackfillPlanner:
    """Plans job starts for one scheduling instance.

    Parameters
    ----------
    backfill_enabled:
        ``False`` degrades to plain FCFS (used by ablations).
    backfill_depth:
        Scan at most this many queued jobs behind the head (None = all).
    allow_loans:
        Whether backfilled jobs may borrow reserved-idle nodes.
    """

    def __init__(
        self,
        backfill_enabled: bool = True,
        backfill_depth: Optional[int] = None,
        allow_loans: bool = True,
        flexible_malleable: bool = True,
    ) -> None:
        self.backfill_enabled = backfill_enabled
        self.backfill_depth = backfill_depth
        self.allow_loans = allow_loans
        self.flexible_malleable = flexible_malleable

    def _min_size(self, job: Job) -> int:
        """Smallest start size (baseline pins malleable jobs at full size)."""
        return job.smallest_size if self.flexible_malleable else job.size

    # ------------------------------------------------------------------
    def plan(
        self,
        profile: ProfileView,
        ordered_queue: Sequence[Job],
        loanable: Sequence[Tuple[int, int]],
        predict_wall: WallPredictor,
    ) -> List[StartDecision]:
        """Choose the set of jobs to start at this instant.

        Parameters
        ----------
        profile:
            The scheduling instant's availability: ``profile.free`` is
            the genuinely free pool (cluster free minus all reserved
            holdings) and ``profile.shadow`` answers the head's earliest
            fit from running jobs' predicted releases and reservation
            pseudo-blocks.
        loanable:
            ``(reservation_id, held_nodes)`` for active not-yet-arrived
            reservations, in loan-priority order.
        """
        now = profile.now
        free = profile.free
        decisions: List[StartDecision] = []
        queue = list(ordered_queue)
        loan_pool: List[List[int]] = [[rid, held] for rid, held in loanable]

        # Phase 1 — start jobs in order while they fit in the free pool.
        head_idx = 0
        while head_idx < len(queue):
            job = queue[head_idx]
            if self._min_size(job) > free:
                break
            nodes = min(job.max_size, free)
            decisions.append(
                StartDecision(job=job, nodes=nodes, free_used=nodes)
            )
            free -= nodes
            head_idx += 1

        if head_idx >= len(queue) or not self.backfill_enabled:
            return decisions

        # Phase 2 — shadow reservation for the blocked head (a profile
        # query; phase 1 consumed free nodes, so pass the reduced pool).
        head = queue[head_idx]
        shadow = profile.shadow(self._min_size(head), free=free)

        # Phase 3 — backfill the remaining queue.
        extra = shadow.extra_nodes
        candidates = queue[head_idx + 1 :]
        if self.backfill_depth is not None:
            candidates = candidates[: self.backfill_depth]
        for job in candidates:
            if free <= 0 and not self._loans_available(loan_pool):
                break
            pick = self._fit_backfill(
                now, job, free, loan_pool, shadow.time, extra, predict_wall
            )
            if pick is None:
                continue
            nodes, free_used, loans, used_extra = pick
            decisions.append(
                StartDecision(
                    job=job,
                    nodes=nodes,
                    free_used=free_used,
                    loans=loans,
                    backfilled=True,
                )
            )
            free -= free_used
            if used_extra:
                extra -= free_used
            for rid, k in loans.items():
                for entry in loan_pool:
                    if entry[0] == rid:
                        entry[1] -= k
        return decisions

    # ------------------------------------------------------------------
    @staticmethod
    def _loans_available(loan_pool: Sequence[Sequence[int]]) -> bool:
        return any(held > 0 for _, held in loan_pool)

    def _fit_backfill(
        self,
        now: float,
        job: Job,
        free: int,
        loan_pool: List[List[int]],
        shadow_time: float,
        extra: int,
        predict_wall: WallPredictor,
    ) -> Optional[Tuple[int, int, Dict[int, int], bool]]:
        """Try to fit *job* as a backfill; returns (nodes, free_used, loans,
        counted_against_extra) or None.

        A fit is legal iff it cannot delay the head's shadow reservation:
        either the job's predicted end is before the shadow time, or the
        nodes it takes from the *free* pool fit in the extra budget
        (loaned reserved nodes never delay the head).

        On-demand jobs never borrow reserved nodes: a borrower is preempted
        when the owning on-demand job arrives, and on-demand jobs must never
        be preempted (§III-A).
        """
        may_loan = self.allow_loans and not job.is_ondemand
        loan_total = sum(h for _, h in loan_pool) if may_loan else 0
        avail = free + loan_total
        min_size = self._min_size(job)
        if min_size > avail:
            return None

        def split(nodes: int) -> Tuple[int, Dict[int, int]]:
            free_used = min(nodes, free)
            need = nodes - free_used
            loans: Dict[int, int] = {}
            for entry in loan_pool:
                if need <= 0:
                    break
                rid, held = entry
                take = min(held, need)
                if take > 0:
                    loans[rid] = take
                    need -= take
            return free_used, loans

        # Attempt 1: largest possible size; qualifies if it ends in time.
        nodes = min(job.max_size, avail)
        free_used, loans = split(nodes)
        end = now + predict_wall(job, nodes)
        if end <= shadow_time + EPS:
            return nodes, free_used, loans, False

        # Attempt 2: qualify via the extra-node budget (no time limit) —
        # the free draw must fit in `extra`; prefer the largest such size.
        budget = min(free, max(extra, 0)) + loan_total
        if budget >= min_size:
            nodes = min(job.max_size, budget)
            free_used = min(nodes, min(free, max(extra, 0)))
            need = nodes - free_used
            loans = {}
            for entry in loan_pool:
                if need <= 0:
                    break
                rid, held = entry
                take = min(held, need)
                if take > 0:
                    loans[rid] = take
                    need -= take
            if need == 0:
                return nodes, free_used, loans, True

        # Attempt 3 (rigid only): a smaller malleable size could still fit
        # the time window; for malleable jobs smaller = slower, so there is
        # nothing further to try.
        return None
