"""Grid runner: (mechanism x trace seed x workload mix) campaigns.

Each cell generates its trace *inside* the run call so worker processes
never ship job lists around — a (spec, seed, mechanism) triple is a
complete description of a cell, which also makes every cell individually
reproducible from the command line.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.mechanisms import Mechanism
from repro.jobs.job import Job
from repro.metrics.summary import SummaryMetrics, average_summaries, summarize
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation, SimScratch, process_scratch
from repro.workload.spec import NoticeMix, WorkloadSpec
from repro.workload.stream import JobStream, as_stream
from repro.workload.theta import generate_trace, stream_jobs_from_rows
from repro.workload.trace_cache import get_trace_cache


@dataclass(frozen=True)
class Cell:
    """One grid cell: a mechanism run on one generated trace.

    ``summary`` is ``None`` — and ``error`` holds the worker traceback —
    when the cell raised instead of completing; one bad cell must never
    abort a whole grid.
    """

    mechanism_name: Optional[str]
    seed: int
    mix_name: str
    summary: Optional[SummaryMetrics]
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def run_one(
    spec: WorkloadSpec,
    seed: int,
    mechanism: Optional[Mechanism],
    sim: Optional[SimConfig] = None,
    jobs: Optional[Iterable[Job]] = None,
    log_path: Optional[str] = None,
    stream: bool = True,
    scratch: Optional[SimScratch] = None,
) -> SummaryMetrics:
    """Generate (or accept) a trace and simulate it under one mechanism.

    *jobs* bypasses the synthetic generator — the campaign engine's SWF
    cells feed their retyped log in here.  Any submit-ordered iterable
    is accepted: a :class:`~repro.workload.stream.JobStream` streams
    with its declared notice horizon, a plain sequence takes the
    materialized path, and any other iterator/generator is coerced via
    :func:`~repro.workload.stream.as_stream` (default horizon).

    When *jobs* is ``None`` and *stream* is true (the default), the
    trace is served from the process-wide
    :class:`~repro.workload.trace_cache.TraceCache` — generation runs
    once per ``(spec, seed)`` per worker process, each call streams
    fresh jobs off the shared rows, and no job list is ever
    materialized.  ``stream=False`` restores the pre-cache behaviour
    (generate a full list, simulate it materialized) — summaries are
    byte-identical either way; the flag exists for A/B benchmarking.

    *scratch* lets a worker reuse one set of simulation hot-path
    buffers across calls (see
    :func:`~repro.sim.simulator.process_scratch`).

    *log_path* turns on decision logging for this run and writes the
    log as JSONL there (``--log-decisions``); it is deliberately an
    out-of-band side channel so it never perturbs the summary or any
    content-addressed cell key derived from the config.
    """
    sim = sim or SimConfig(system_size=spec.system_size)
    if log_path is not None and not sim.log_decisions:
        sim = replace(sim, log_decisions=True)
    if jobs is None:
        if stream:
            rows = get_trace_cache().theta_rows(spec, seed)
            jobs = stream_jobs_from_rows(spec, rows)
        else:
            jobs = generate_trace(spec, seed=seed)
    elif not isinstance(jobs, (Sequence, JobStream)):
        jobs = as_stream(jobs)
    result = Simulation(jobs, sim, mechanism, scratch=scratch).run()
    if log_path is not None and result.log is not None:
        result.log.write_jsonl(log_path)
    return summarize(result, instant_threshold_s=sim.instant_threshold_s)


def _run_cell(
    args: Tuple[WorkloadSpec, int, Optional[str], SimConfig, str],
) -> Cell:
    spec, seed, mech_name, sim, mix_name = args
    try:
        mechanism = Mechanism.parse(mech_name) if mech_name else None
        summary = run_one(spec, seed, mechanism, sim, scratch=process_scratch())
    except Exception:
        return Cell(
            mechanism_name=mech_name,
            seed=seed,
            mix_name=mix_name,
            summary=None,
            error=traceback.format_exc(),
        )
    return Cell(
        mechanism_name=mech_name, seed=seed, mix_name=mix_name, summary=summary
    )


def _chunksize(n_cells: int, workers: int) -> int:
    """Batch cells per worker dispatch: ~4 chunks per worker, capped at 8.

    The default ``pool.map`` chunksize of 1 pays one pickle/dispatch round
    trip per cell, which dominates for the many-small-cell grids the
    campaign engine produces.
    """
    return max(1, min(8, n_cells // (workers * 4) or 1))


def _execute(
    cells: List[Tuple[WorkloadSpec, int, Optional[str], SimConfig, str]],
    workers: int,
) -> List[Cell]:
    if workers <= 1:
        return [_run_cell(c) for c in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(_run_cell, cells, chunksize=_chunksize(len(cells), workers))
        )


def _group(results: List[Cell], **match: object) -> List[SummaryMetrics]:
    """Summaries of the non-failed cells matching the given fields."""
    group = [
        c
        for c in results
        if all(getattr(c, k) == v for k, v in match.items())
    ]
    ok = [c.summary for c in group if c.summary is not None]
    if group and not ok:
        raise RuntimeError(
            f"all {len(group)} cells failed for {match}; first error:\n"
            f"{group[0].error}"
        )
    return ok


def run_mechanism_grid(
    spec: WorkloadSpec,
    mechanisms: Sequence[Optional[Mechanism]],
    seeds: Sequence[int],
    sim: Optional[SimConfig] = None,
    workers: int = 1,
    mix_name: str = "",
) -> Dict[Optional[str], SummaryMetrics]:
    """Average each mechanism over the trace seeds.

    ``None`` in *mechanisms* runs the baseline.  Returns
    ``{mechanism_name_or_None: averaged summary}`` preserving input order.
    """
    sim = sim or SimConfig(system_size=spec.system_size)
    # seed-major: the cells sharing one (spec, seed) trace run back to
    # back, so each generation in the process-wide trace cache serves
    # every mechanism before the LRU can evict it
    cells = [
        (spec, seed, m.name if m else None, sim, mix_name)
        for seed in seeds
        for m in mechanisms
    ]
    results = _execute(cells, workers)
    out: Dict[Optional[str], SummaryMetrics] = {}
    for m in mechanisms:
        name = m.name if m else None
        out[name] = average_summaries(_group(results, mechanism_name=name))
    return out


def run_workload_sweep(
    spec: WorkloadSpec,
    mixes: Sequence[NoticeMix],
    mechanisms: Sequence[Optional[Mechanism]],
    seeds: Sequence[int],
    sim: Optional[SimConfig] = None,
    workers: int = 1,
) -> Dict[str, Dict[Optional[str], SummaryMetrics]]:
    """The Fig. 6 grid: Table III mixes x mechanisms, averaged over seeds."""
    sim = sim or SimConfig(system_size=spec.system_size)
    # (mix, seed)-major for trace-cache affinity, as in run_mechanism_grid
    cells = [
        (spec.with_notice_mix(mix), seed, m.name if m else None, sim, mix.name)
        for mix in mixes
        for seed in seeds
        for m in mechanisms
    ]
    results = _execute(cells, workers)
    out: Dict[str, Dict[Optional[str], SummaryMetrics]] = {}
    for mix in mixes:
        per_mech: Dict[Optional[str], SummaryMetrics] = {}
        for m in mechanisms:
            name = m.name if m else None
            per_mech[name] = average_summaries(
                _group(results, mechanism_name=name, mix_name=mix.name)
            )
        out[mix.name] = per_mech
    return out
