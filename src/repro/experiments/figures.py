"""Drivers that regenerate every table and figure of the paper.

Each function returns a dict with structured results plus a ``text`` key
holding the rendered exhibit (the same rows/series the paper reports).
The benchmark harness (benchmarks/) calls these and prints the text; the
EXPERIMENTS.md paper-vs-measured record is produced the same way.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_mechanism_grid
from repro.metrics.report import format_summary_rows, format_table
from repro.metrics.summary import SummaryMetrics, average_summaries
from repro.workload.ondemand import burstiness_cv
from repro.workload.spec import NOTICE_MIXES, NoticeMix, W1, W2, W3, W4, W5
from repro.workload.theta import generate_trace
from repro.workload.trace import (
    characterize_sizes,
    table1_summary,
    type_shares,
)

FIG6_MIXES: List[NoticeMix] = [W1, W2, W3, W4, W5]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaign.store import CellRecord


# ----------------------------------------------------------------------
# Table I — workload summary
# ----------------------------------------------------------------------
def table1_workload(config: ExperimentConfig) -> Dict[str, object]:
    """Table I: basic statistics of one generated trace."""
    jobs = generate_trace(config.spec, seed=config.base_seed)
    summary = table1_summary(jobs, config.spec.system_size)
    rows = [[k, v] for k, v in summary.items()]
    text = format_table(
        ["field", "value"], rows, title="Table I — synthetic Theta workload"
    )
    return {"summary": summary, "jobs": jobs, "text": text}


# ----------------------------------------------------------------------
# Fig. 3 — job count and core-hours by size range
# ----------------------------------------------------------------------
def fig3_size_mix(config: ExperimentConfig) -> Dict[str, object]:
    """Fig. 3: jobs (outer ring) and core-hours (inner ring) per size bucket."""
    jobs = generate_trace(config.spec, seed=config.base_seed)
    buckets = characterize_sizes(jobs, edges=config.spec.size_bucket_edges)
    total_jobs = sum(b[1] for b in buckets) or 1
    total_ch = sum(b[2] for b in buckets) or 1.0
    rows = [
        [label, count, count / total_jobs, ch, ch / total_ch]
        for label, count, ch in buckets
    ]
    text = format_table(
        ["size range", "jobs", "job share", "core-hours", "ch share"],
        rows,
        title="Fig. 3 — job size mix",
    )
    return {"buckets": buckets, "text": text}


# ----------------------------------------------------------------------
# Fig. 4 — job-type distribution across traces
# ----------------------------------------------------------------------
def fig4_type_mix(config: ExperimentConfig) -> Dict[str, object]:
    """Fig. 4: per-trace shares of rigid / on-demand / malleable jobs."""
    shares = []
    for seed in config.seeds():
        jobs = generate_trace(config.spec, seed=seed)
        shares.append(type_shares(jobs))
    rows = [
        [f"trace-{i}", s["rigid"], s["ondemand"], s["malleable"]]
        for i, s in enumerate(shares)
    ]
    text = format_table(
        ["trace", "rigid", "ondemand", "malleable"],
        rows,
        title="Fig. 4 — job-type distribution per trace",
    )
    return {"shares": shares, "text": text}


# ----------------------------------------------------------------------
# Fig. 5 — weekly on-demand submissions (burstiness)
# ----------------------------------------------------------------------
def fig5_burstiness(
    config: ExperimentConfig, campaign_dir: Optional[str] = None
) -> Dict[str, object]:
    """Fig. 5: on-demand jobs per week for sample traces.

    Runs as a ``kind="trace"`` campaign, so passing *campaign_dir*
    caches the per-seed workload characterizations across invocations.
    """
    from repro.campaign.executor import run_campaign
    from repro.campaign.store import ResultStore

    cspec = config.to_campaign_spec(name="fig5", kind="trace")
    cspec = replace(cspec, mechanism=(None,), seeds=tuple(config.seeds()[:3]))
    store = ResultStore(campaign_dir) if campaign_dir else None
    run = run_campaign(cspec, store=store, workers=config.workers)
    if run.n_failed:
        failed = [r for r in run.records if not r.ok]
        raise RuntimeError(
            f"{run.n_failed} trace cells failed; first error:\n"
            f"{failed[0].error}"
        )
    series = {}
    for record in run.ok_records:
        payload = record.payload or {}
        series[int(record.config["seed"])] = list(payload["weekly_ondemand"])
    rows = []
    for seed, counts in series.items():
        rows.append(
            [
                f"seed-{seed}",
                len(counts),
                sum(counts),
                burstiness_cv(counts),
                " ".join(str(c) for c in counts[:12])
                + (" ..." if len(counts) > 12 else ""),
            ]
        )
    text = format_table(
        ["trace", "weeks", "total od", "cv", "weekly counts"],
        rows,
        title="Fig. 5 — weekly on-demand submissions",
    )
    from repro.campaign.svg import line_chart

    n_weeks = max((len(c) for c in series.values()), default=0)
    chart = line_chart(
        list(range(1, n_weeks + 1)),
        [
            (f"seed-{seed}", [float(c) for c in counts])
            for seed, counts in series.items()
        ],
        title="Fig. 5 — weekly on-demand submissions",
        x_label="week",
    )
    charts = [("weekly on-demand submissions", chart)] if series else []
    return {"series": series, "text": text, "charts": charts}


# ----------------------------------------------------------------------
# Table II — baseline performance
# ----------------------------------------------------------------------
def table2_baseline(config: ExperimentConfig) -> Dict[str, object]:
    """Table II: FCFS/EASY with no special treatment of any class."""
    baseline_sim = replace(config.sim, flexible_malleable=False)
    grid = run_mechanism_grid(
        config.spec,
        [None],
        config.seeds(),
        sim=baseline_sim,
        workers=config.workers,
    )
    s = grid[None]
    rows = [
        ["Avg. Turnaround", f"{s.avg_turnaround_h:.1f} hours"],
        ["System Util.", f"{100 * s.system_utilization:.2f}%"],
        ["On-demand Instant Start Rate", f"{100 * s.instant_start_rate:.2f}%"],
    ]
    text = format_table(
        ["metric", "value"], rows, title="Table II — baseline (FCFS/EASY)"
    )
    return {"summary": s, "text": text}


# ----------------------------------------------------------------------
# Table III — the notice-accuracy mixes (configuration table)
# ----------------------------------------------------------------------
def table3_mixes() -> Dict[str, object]:
    """Table III: W1–W5 on-demand notice distributions."""
    rows = [
        [m.name, m.none, m.accurate, m.early, m.late]
        for m in NOTICE_MIXES.values()
    ]
    text = format_table(
        ["workload", "no notice", "accurate", "early", "late"],
        rows,
        title="Table III — on-demand notice mixes",
    )
    return {"mixes": dict(NOTICE_MIXES), "text": text}


# ----------------------------------------------------------------------
# Fig. 6 — the headline grid: mechanisms x mixes
# ----------------------------------------------------------------------
def _mix_matches(config_mix: object, mix: NoticeMix) -> bool:
    if isinstance(config_mix, str):
        return config_mix == mix.name
    if isinstance(config_mix, dict):
        return config_mix.get("name") == mix.name
    return False


def _sweep_from_records(
    records: Sequence["CellRecord"],
    mixes: Sequence[NoticeMix],
    mechanisms: Sequence[Optional[Mechanism]],
) -> Dict[str, Dict[Optional[str], SummaryMetrics]]:
    """Reassemble campaign records into the Fig. 6 sweep shape."""
    out: Dict[str, Dict[Optional[str], SummaryMetrics]] = {}
    for mix in mixes:
        per_mech: Dict[Optional[str], SummaryMetrics] = {}
        for m in mechanisms:
            name = m.name if m else None
            group = [
                r.summary_metrics()
                for r in records
                if r.ok
                and r.config["mechanism"] == name
                and _mix_matches(r.config["notice_mix"], mix)
            ]
            if not group:
                failed = [
                    r
                    for r in records
                    if not r.ok
                    and r.config["mechanism"] == name
                    and _mix_matches(r.config["notice_mix"], mix)
                ]
                raise RuntimeError(
                    f"no completed cells for mix={mix.name} "
                    f"mechanism={name}; first error:\n"
                    f"{failed[0].error if failed else '(no cells at all)'}"
                )
            per_mech[name] = average_summaries(group)
        out[mix.name] = per_mech
    return out

def fig6_mechanisms(
    config: ExperimentConfig,
    mixes: Optional[Sequence[NoticeMix]] = None,
    campaign_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Fig. 6: all six mechanisms under the five Table III mixes.

    The grid runs as a campaign: with *campaign_dir* set, completed
    (mix x mechanism x seed) cells are cached on disk and reused by any
    later invocation — including partial overlaps such as a rerun with
    more seeds or extra mechanisms.
    """
    from repro.campaign.executor import run_campaign
    from repro.campaign.store import ResultStore

    mixes = list(mixes) if mixes is not None else FIG6_MIXES
    cspec = config.to_campaign_spec(name="fig6", mixes=mixes)
    store = ResultStore(campaign_dir) if campaign_dir else None
    run = run_campaign(cspec, store=store, workers=config.workers)
    if run.n_failed:
        # a partial seed average would silently skew the figure; surface
        # the failure instead (retry via the campaign CLI --retry-failed)
        failed = [r for r in run.records if not r.ok]
        raise RuntimeError(
            f"{run.n_failed} fig6 cells failed; first error:\n"
            f"{failed[0].error}"
        )
    sweep = _sweep_from_records(run.records, mixes, config.mechanisms)
    parts = [table3_mixes()["text"], ""]
    for mix in mixes:
        parts.append(
            format_summary_rows(
                list(sweep[mix.name].values()),
                title=f"Fig. 6 — workload {mix.name}",
            )
        )
        parts.append("")
    charts = _grid_charts(
        sweep,
        x_label="notice mix",
        title_prefix="Fig. 6",
    )
    return {"sweep": sweep, "text": "\n".join(parts), "charts": charts}


# ----------------------------------------------------------------------
# Fig. 7 — checkpoint-frequency sensitivity
# ----------------------------------------------------------------------
def fig7_checkpointing(
    config: ExperimentConfig,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0),
    campaign_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Fig. 7: the Fig. 6 metrics as the checkpoint interval is scaled.

    ``0.5`` = twice as frequent as Daly's optimum (the paper's "50 %").

    The multipliers are a campaign axis, so with *campaign_dir* every
    (multiplier x mechanism x seed) cell is cached on disk — rerunning
    with an extra multiplier only computes the new column.
    """
    from repro.campaign.executor import run_campaign
    from repro.campaign.store import ResultStore

    cspec = config.to_campaign_spec(name="fig7")
    cspec = replace(
        cspec,
        checkpoint_multiplier=tuple(float(m) for m in multipliers),
    )
    store = ResultStore(campaign_dir) if campaign_dir else None
    run = run_campaign(cspec, store=store, workers=config.workers)
    if run.n_failed:
        failed = [r for r in run.records if not r.ok]
        raise RuntimeError(
            f"{run.n_failed} fig7 cells failed; first error:\n"
            f"{failed[0].error}"
        )
    results: Dict[float, Dict[Optional[str], SummaryMetrics]] = {}
    parts = []
    for mult in multipliers:
        grid: Dict[Optional[str], SummaryMetrics] = {}
        for m in config.mechanisms:
            group = [
                r.summary_metrics()
                for r in run.ok_records
                if r.config["mechanism"] == m.name
                and float(r.config["checkpoint_multiplier"]) == float(mult)
            ]
            grid[m.name] = average_summaries(group)
        results[mult] = grid
        parts.append(
            format_summary_rows(
                list(grid.values()),
                title=f"Fig. 7 — checkpoint interval x{mult:g} "
                f"({100 / mult:.0f}% frequency)",
            )
        )
        parts.append("")
    charts = _grid_charts(
        {f"x{m:g}": results[m] for m in multipliers},
        x_label="checkpoint interval multiplier",
        title_prefix="Fig. 7",
        numeric_x=[float(m) for m in multipliers],
    )
    return {"results": results, "text": "\n".join(parts), "charts": charts}


# ----------------------------------------------------------------------
# Shared chart emission (Fig. 6 / Fig. 7 grids)
# ----------------------------------------------------------------------

#: the metrics the paper's Fig. 6/7 panels chart, one chart per metric
CHART_METRICS: Sequence[str] = (
    "avg_turnaround_h",
    "system_utilization",
    "instant_start_rate",
    "preemption_ratio_rigid",
    "preemption_ratio_malleable",
)


def _grid_charts(
    grid: Dict[str, Dict[Optional[str], SummaryMetrics]],
    x_label: str,
    title_prefix: str,
    numeric_x: Optional[Sequence[float]] = None,
    metrics: Sequence[str] = CHART_METRICS,
) -> List[tuple]:
    """Per-metric charts for an (x-point -> mechanism -> summary) grid.

    The campaign HTML exporter and the paper-figure drivers both render
    through :mod:`repro.campaign.svg`, so a figure regenerated here and
    a campaign report over the same cells look identical.  A numeric x
    axis (Fig. 7's multipliers) draws lines; categorical x (Fig. 6's
    mixes) draws grouped bars — one chart per metric, mechanisms as the
    series, matching the paper's panel layout.
    """
    from repro.campaign.svg import bar_chart, line_chart

    x_points = list(grid)
    mechanisms: List[Optional[str]] = []
    for per_mech in grid.values():
        for name in per_mech:
            if name not in mechanisms:
                mechanisms.append(name)
    charts = []
    for metric in metrics:
        series = []
        for mech in mechanisms:
            values = []
            for x in x_points:
                summary = grid[x].get(mech)
                value = (
                    summary.as_dict().get(metric) if summary else None
                )
                values.append(
                    float(value)
                    if isinstance(value, (int, float))
                    else None
                )
            series.append((mech or "baseline", values))
        title = f"{title_prefix} — {metric}"
        if numeric_x is not None and len(numeric_x) >= 3:
            chart = line_chart(
                list(numeric_x), series, title=title, x_label=x_label
            )
        else:
            chart = bar_chart(
                x_points, series, title=title, x_label=x_label
            )
        charts.append((metric, chart))
    return charts


# ----------------------------------------------------------------------
# Convenience: the full headline comparison at the default mix
# ----------------------------------------------------------------------
def headline_comparison(config: ExperimentConfig) -> Dict[str, object]:
    """Baseline + all six mechanisms at the spec's default mix (W5)."""
    mechanisms: List[Optional[Mechanism]] = [None, *ALL_MECHANISMS]
    grid = run_mechanism_grid(
        config.spec,
        mechanisms,
        config.seeds(),
        sim=config.sim,
        workers=config.workers,
    )
    text = format_summary_rows(
        list(grid.values()), title="Baseline vs. the six mechanisms"
    )
    return {"grid": grid, "text": text}
