"""Command-line front end: ``repro-hybrid <exhibit> [options]``.

Examples::

    repro-hybrid table2 --days 28 --traces 3
    repro-hybrid fig6 --days 21 --traces 2 --workers 4
    repro-hybrid fig7 --multipliers 0.5 1 2
    repro-hybrid compare --mechanisms "CUA&SPAA" "N&PAA"

Campaigns (durable, resumable scenario grids)::

    repro-hybrid campaign run --dir runs/grid --days 7 \\
        --mechanisms all --seeds 1 2 3 --workers 4
    repro-hybrid campaign run --dir runs/grid2 --spec my_campaign.json
    repro-hybrid campaign run --dir runs/grid --retry-failed \\
        --filter mechanism=N&PAA seed=2
    repro-hybrid campaign status --dir runs/grid
    repro-hybrid campaign report --dir runs/grid --by mechanism
    repro-hybrid campaign report --dir runs/grid --html report.html --open
    repro-hybrid campaign report --dir runs/easy --diff runs/conservative
    repro-hybrid campaign gc --dir runs/grid --drop-errors

Distributed campaigns (cell leasing + per-worker shards)::

    repro-hybrid campaign fleet --dir runs/big --days 365 \\
        --mechanisms all+baseline --seeds 1 2 3 4 5 --workers 8
    repro-hybrid campaign fleet --dir /shared/runs/big --spec grid.json \\
        --ssh-hosts node1 node2 node3 --remote-python python3
    repro-hybrid campaign worker --dir /shared/runs/big --shard node1-0
    repro-hybrid campaign merge --dir /shared/runs/big
    repro-hybrid campaign status --dir /shared/runs/big --watch

Instrumentation (spans + metrics, Perfetto-compatible traces)::

    repro-hybrid campaign run --dir runs/grid --trace run.trace.json
    repro-hybrid campaign fleet --dir runs/big --trace fleet.trace.json
    repro-hybrid campaign report --dir runs/grid --html report.html \\
        --trace run.trace.json
    repro-hybrid obs summary run.trace.json
    repro-hybrid obs from-decisions runs/logs/*.jsonl -o sim.trace.json

Performance observatory (perf history + regression gates)::

    repro-hybrid perf run --scenario sim_core -p n_jobs=1000 \\
        --history runs/perf/history.jsonl
    repro-hybrid perf record --baseline benchmarks/baselines/smoke.jsonl
    repro-hybrid perf compare --history runs/perf/history.jsonl \\
        --baseline benchmarks/baselines/smoke.jsonl
    repro-hybrid perf report --history runs/perf/history.jsonl \\
        --html perf-trend.html
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.experiments.config import ExperimentConfig
from repro.experiments import figures
from repro.sched.registry import policy_names
from repro.sim.config import SimConfig
from repro.sim.failures import FailureModel
from repro.util.timeconst import DAY
from repro.workload.spec import NOTICE_MIXES, theta_spec


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    spec = theta_spec(
        days=args.days,
        target_load=args.load,
        system_size=args.nodes,
        notice_mix=NOTICE_MIXES[args.mix],
        ondemand_noshow_frac=args.noshow_frac,
    )
    failures = (
        FailureModel(enabled=True, node_mtbf_s=args.failure_mtbf_days * DAY)
        if args.failure_mtbf_days
        else FailureModel.disabled()
    )
    sim = SimConfig(
        system_size=args.nodes,
        backfill_mode=args.backfill,
        failures=failures,
        policy=args.policy,
    )
    mechanisms: List[Mechanism] = (
        [Mechanism.parse(m) for m in args.mechanisms]
        if getattr(args, "mechanisms", None)
        else list(ALL_MECHANISMS)
    )
    return ExperimentConfig(
        spec=spec,
        sim=sim,
        mechanisms=mechanisms,
        n_traces=args.traces,
        base_seed=args.seed,
        workers=args.workers,
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hybrid",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exhibit",
        choices=[
            "table1",
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "compare",
        ],
        help="which exhibit to regenerate",
    )
    parser.add_argument("--days", type=float, default=28.0, help="trace horizon")
    parser.add_argument("--nodes", type=int, default=4392, help="system size")
    parser.add_argument("--load", type=float, default=0.82, help="offered load")
    parser.add_argument("--traces", type=int, default=3, help="trace replicas")
    parser.add_argument("--seed", type=int, default=2022, help="base seed")
    parser.add_argument("--workers", type=int, default=1, help="processes")
    parser.add_argument(
        "--mix", choices=sorted(NOTICE_MIXES), default="W5", help="notice mix"
    )
    parser.add_argument(
        "--mechanisms",
        nargs="*",
        default=None,
        help='mechanism names, e.g. "CUA&SPAA" (default: all six)',
    )
    parser.add_argument(
        "--multipliers",
        nargs="*",
        type=float,
        default=[0.5, 1.0, 2.0],
        help="fig7 checkpoint interval multipliers",
    )
    parser.add_argument(
        "--backfill",
        choices=["easy", "conservative"],
        default="easy",
        help="backfilling flavour (paper: easy)",
    )
    parser.add_argument(
        "--policy",
        choices=list(policy_names()),
        default=None,
        help="registered dispatcher (default: FCFS + --backfill)",
    )
    parser.add_argument(
        "--noshow-frac",
        type=float,
        default=0.0,
        help="fraction of noticed on-demand jobs that never arrive",
    )
    parser.add_argument(
        "--failure-mtbf-days",
        type=float,
        default=0.0,
        help="per-node MTBF in days for failure injection (0 = off)",
    )
    parser.add_argument(
        "--html",
        dest="html_out",
        default=None,
        metavar="FILE",
        help="write the exhibit as a self-contained HTML page "
        "(inline SVG charts where the exhibit has them)",
    )
    return parser


def _add_grid_args(parser: argparse.ArgumentParser) -> None:
    """Axis options shared by ``campaign run`` and ``campaign fleet``."""
    parser.add_argument(
        "--spec",
        default=None,
        help="JSON campaign spec file (axes accept scalars or lists)",
    )
    parser.add_argument("--name", default="campaign")
    parser.add_argument("--days", nargs="*", type=float, default=[28.0])
    parser.add_argument("--load", nargs="*", type=float, default=[0.82])
    parser.add_argument("--nodes", nargs="*", type=int, default=[4392])
    parser.add_argument(
        "--mixes", nargs="*", choices=sorted(NOTICE_MIXES), default=["W5"]
    )
    parser.add_argument(
        "--mechanisms",
        nargs="*",
        default=["all+baseline"],
        help='names like "CUA&SPAA", "baseline", or "all"/"all+baseline"',
    )
    parser.add_argument(
        "--backfill", nargs="*", choices=["easy", "conservative"],
        default=["easy"],
    )
    parser.add_argument(
        "--policies",
        nargs="*",
        choices=list(policy_names()),
        default=None,
        help="registered dispatchers to sweep as a campaign axis "
        "(default: the legacy FCFS + --backfill cells)",
    )
    parser.add_argument(
        "--policy-params",
        nargs="*",
        default=None,
        metavar="POLICY.KNOB=VALUE",
        help="policy tuning knobs, e.g. score.wait_weight=2 "
        "prb_ewt.long_ewt_s=14400",
    )
    parser.add_argument(
        "--ckpt-multipliers", nargs="*", type=float, default=[1.0]
    )
    parser.add_argument(
        "--failure-mtbf-days", nargs="*", type=float, default=[0.0]
    )
    parser.add_argument(
        "--trace-file",
        nargs="*",
        default=None,
        help="SWF log path(s) to sweep as a trace axis (instead of the "
        "synthetic Theta generator)",
    )
    parser.add_argument(
        "--cores-per-node",
        type=int,
        default=None,
        help="SWF processors-per-node divisor (with --trace-file)",
    )
    parser.add_argument("--seeds", nargs="*", type=int, default=None)
    parser.add_argument("--traces", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--grow",
        action="store_true",
        help="allow this spec to extend the campaign already in --dir "
        "(cached cells are reused; the stored spec is replaced)",
    )


def make_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hybrid campaign",
        description="Durable, resumable scenario-grid campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run (or resume) a campaign")
    run_p.add_argument(
        "--dir",
        dest="directory",
        default=None,
        help="campaign directory (omit for an ephemeral in-memory run)",
    )
    _add_grid_args(run_p)
    run_p.add_argument("--workers", type=int, default=1)
    run_p.add_argument(
        "--batch-size", type=int, default=None,
        help="cells per pool round-trip with --workers > 1 "
        "(default: auto, ~4 batches per worker capped at 8)",
    )
    run_p.add_argument(
        "--max-inflight", type=int, default=None,
        help="bound on simultaneously submitted cell batches "
        "(default: 4 x workers)",
    )
    run_p.add_argument(
        "--no-stream", action="store_true",
        help="materialize each cell's trace instead of streaming it "
        "off the shared cache (A/B benchmarking; results identical)",
    )
    run_p.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-run cells whose stored status is 'error'",
    )
    run_p.add_argument(
        "--filter",
        dest="filters",
        nargs="*",
        default=None,
        metavar="KEY=VALUE",
        help="with --retry-failed: only retry failures matching every "
        'pair, e.g. --filter "mechanism=N&PAA" seed=2',
    )
    run_p.add_argument(
        "--trace",
        dest="trace_out",
        default=None,
        metavar="FILE",
        help="capture instrumentation spans + metrics and write a "
        "Chrome/Perfetto trace-event JSON file (open in ui.perfetto.dev)",
    )
    run_p.add_argument(
        "--log-decisions",
        dest="log_decisions",
        default=None,
        metavar="DIR",
        help="write each cell's scheduler decision log to "
        "DIR/<cell key>.jsonl",
    )

    fleet_p = sub.add_parser(
        "fleet",
        help="run a campaign with a worker fleet (leases + shards)",
    )
    fleet_p.add_argument("--dir", dest="directory", required=True)
    _add_grid_args(fleet_p)
    fleet_p.add_argument(
        "--workers", type=int, default=2,
        help="local subprocess workers (ignored with --ssh-hosts)",
    )
    fleet_p.add_argument(
        "--ssh-hosts", nargs="*", default=None,
        help="run one worker per host over ssh (shared filesystem)",
    )
    fleet_p.add_argument(
        "--remote-python", default="python3",
        help="python executable on the ssh hosts",
    )
    fleet_p.add_argument(
        "--remote-dir", default=None,
        help="campaign dir as seen from the ssh hosts (default: --dir)",
    )
    fleet_p.add_argument(
        "--remote-pythonpath", default=None,
        help="PYTHONPATH to set on the ssh hosts (source checkouts)",
    )
    fleet_p.add_argument("--ttl", type=float, default=60.0)
    fleet_p.add_argument("--poll", type=float, default=1.0)
    fleet_p.add_argument(
        "--claim-batch", type=int, default=1,
        help="leases each worker claims per round (amortizes "
        "lease-board and completion-scan traffic)",
    )
    fleet_p.add_argument(
        "--trace",
        dest="trace_out",
        default=None,
        metavar="FILE",
        help="trace the launcher AND every worker (workers write "
        "<dir>/traces/<shard>.trace.json; all merged into FILE)",
    )

    worker_p = sub.add_parser(
        "worker",
        help="work one campaign directory (claim cells, append a shard)",
    )
    worker_p.add_argument("--dir", dest="directory", required=True)
    worker_p.add_argument(
        "--shard", required=True,
        help="private shard name; unique per concurrent worker",
    )
    worker_p.add_argument("--ttl", type=float, default=60.0)
    worker_p.add_argument("--poll", type=float, default=1.0)
    worker_p.add_argument(
        "--max-cells", type=int, default=None,
        help="stop after executing this many cells",
    )
    worker_p.add_argument(
        "--no-wait", action="store_true",
        help="exit when nothing is claimable instead of waiting for "
        "other workers' leases to resolve",
    )
    worker_p.add_argument(
        "--claim-batch", type=int, default=1,
        help="leases to claim per round before executing (amortizes "
        "lease-board and completion-scan traffic)",
    )
    worker_p.add_argument(
        "--trace",
        dest="trace_out",
        default=None,
        metavar="FILE",
        help="write this worker's spans + metrics as trace-event JSON",
    )

    merge_p = sub.add_parser(
        "merge", help="fold shards/*.jsonl into results.jsonl (idempotent)"
    )
    merge_p.add_argument("--dir", dest="directory", required=True)
    merge_p.add_argument(
        "--keep-leases", action="store_true",
        help="do not prune lease files for merged cells",
    )

    gc_p = sub.add_parser(
        "gc", help="compact results.jsonl (drop superseded records)"
    )
    gc_p.add_argument("--dir", dest="directory", required=True)
    gc_p.add_argument(
        "--drop-errors", action="store_true",
        help="also drop 'error' records so those cells re-run",
    )

    status_p = sub.add_parser("status", help="progress of a campaign dir")
    status_p.add_argument("--dir", dest="directory", required=True)
    status_p.add_argument(
        "--watch", action="store_true",
        help="refreshing fleet dashboard: per-worker throughput, "
        "live/expired leases, error counts, grid ETA",
    )
    status_p.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch refreshes",
    )
    status_p.add_argument(
        "--frames", type=int, default=None,
        help="render this many --watch frames then exit "
        "(default: run until interrupted)",
    )
    status_p.add_argument(
        "--window", type=float, default=120.0,
        help="sliding window in seconds for --watch throughput/ETA",
    )

    report_p = sub.add_parser("report", help="pivoted summary / diff")
    report_p.add_argument("--dir", dest="directory", required=True)
    report_p.add_argument(
        "--by",
        nargs="*",
        default=None,
        help="config fields to group rows by (default: notice_mix mechanism)",
    )
    report_p.add_argument(
        "--metrics", nargs="*", default=None,
        help="summary fields to show ('throughput' expands to the "
        "simulator wall-time/events/passes columns)",
    )
    report_p.add_argument(
        "--diff",
        default=None,
        help="second campaign directory to diff against",
    )
    report_p.add_argument(
        "--html",
        dest="html_out",
        default=None,
        metavar="FILE",
        help="also write a self-contained HTML report (inline SVG "
        "charts, sortable pivot, diff dashboard; opens offline)",
    )
    report_p.add_argument(
        "--x",
        dest="chart_x",
        default=None,
        metavar="FIELD",
        help="config field for the HTML charts' x-axis "
        "(default: the last --by field)",
    )
    report_p.add_argument(
        "--open",
        dest="open_html",
        action="store_true",
        help="open the --html file in the default browser",
    )
    report_p.add_argument(
        "--trace",
        dest="trace_in",
        default=None,
        metavar="FILE",
        help="embed a span-timeline panel for this .trace.json in the "
        "--html report",
    )
    return parser


def make_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hybrid obs",
        description="Inspect and convert instrumentation traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary_p = sub.add_parser(
        "summary",
        help="text tables (spans, counters, histograms) for a trace file",
    )
    summary_p.add_argument("trace", help=".trace.json produced by --trace")
    summary_p.add_argument(
        "--top", type=int, default=20,
        help="span rows to show (by total time)",
    )

    conv_p = sub.add_parser(
        "from-decisions",
        help="convert scheduler decision JSONL logs to a sim-time trace",
    )
    conv_p.add_argument(
        "logs", nargs="+",
        help="decision-log .jsonl file(s) from --log-decisions",
    )
    conv_p.add_argument(
        "-o", "--out", required=True,
        help="output trace-event JSON path",
    )
    return parser


def make_perf_parser() -> argparse.ArgumentParser:
    from repro.perf.regress import (
        DEFAULT_GATED_METRICS,
        DEFAULT_TOLERANCE,
        DEFAULT_WINDOW,
    )
    from repro.perf.scenarios import SCENARIOS

    parser = argparse.ArgumentParser(
        prog="repro-hybrid perf",
        description="Continuous performance observatory: record, "
        "compare, and chart perf history.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_measure_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scenario",
            dest="scenarios",
            nargs="*",
            choices=sorted(SCENARIOS),
            default=["sim_core"],
            help="named scenario(s) to measure (default: sim_core)",
        )
        p.add_argument(
            "-p",
            "--param",
            dest="params",
            nargs="*",
            default=None,
            metavar="KEY=VALUE",
            help="scenario parameters (JSON-coerced), e.g. -p n_jobs=1000 "
            "backfill=conservative; params are part of the scenario hash",
        )
        p.add_argument("--warmup", type=int, default=1)
        p.add_argument("--repeat", type=int, default=3)
        p.add_argument(
            "--memory",
            action="store_true",
            help="add an untimed tracemalloc-profiled iteration "
            "(peak/current heap, peak RSS, GC collections)",
        )

    run_p = sub.add_parser(
        "run", help="measure scenario(s) and append to a history file"
    )
    _add_measure_args(run_p)
    run_p.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="perf-history JSONL to append to (omit to just print)",
    )

    record_p = sub.add_parser(
        "record",
        help="measure scenario(s) into a committed baseline file",
    )
    _add_measure_args(record_p)
    record_p.add_argument(
        "--baseline",
        default="benchmarks/baselines/smoke.jsonl",
        metavar="FILE",
        help="baseline JSONL to append to; refreshing an existing file "
        "requires REPRO_UPDATE_BASELINE=1",
    )

    compare_p = sub.add_parser(
        "compare",
        help="judge the newest history records against a baseline "
        "(exit 1 on regression)",
    )
    compare_p.add_argument(
        "--history", required=True, metavar="FILE",
        help="perf-history JSONL holding the fresh records to judge",
    )
    compare_p.add_argument(
        "--baseline", required=True, metavar="FILE",
        help="baseline JSONL (the rolling-median window source)",
    )
    compare_p.add_argument(
        "--metrics", nargs="*", default=list(DEFAULT_GATED_METRICS),
        help="metric names to gate on",
    )
    compare_p.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative tolerance before a change counts (default 0.25)",
    )
    compare_p.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help="rolling-median window over the newest baselines",
    )
    compare_p.add_argument(
        "--ignore-machine",
        action="store_true",
        help="judge across machine fingerprints (CI runners)",
    )

    report_p = sub.add_parser(
        "report", help="render the perf-trend dashboard"
    )
    report_p.add_argument(
        "--history", nargs="+", required=True, metavar="FILE",
        help="history JSONL file(s), concatenated in order",
    )
    report_p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="also judge the newest records against this baseline and "
        "embed the verdicts table",
    )
    report_p.add_argument(
        "--html",
        dest="html_out",
        default=None,
        metavar="FILE",
        help="write the self-contained trend dashboard here "
        "(default: print a text summary)",
    )
    report_p.add_argument(
        "--title", default="Performance trend",
    )
    return parser


def _perf_params(pairs: Optional[List[str]]) -> dict:
    params = _parse_filters(pairs) or {}
    return params


def _perf_measure(args: argparse.Namespace, store) -> List:
    """Run every requested scenario through the shared harness."""
    from repro.perf.harness import bench
    from repro.perf.scenarios import SCENARIOS

    params = _perf_params(args.params)
    records = []
    for name in args.scenarios:
        record = bench(
            name,
            params,
            SCENARIOS[name](params),
            store=store,
            warmup=args.warmup,
            repeat=args.repeat,
            memory=args.memory,
        )
        metrics = ", ".join(
            f"{k}={v:.6g}" for k, v in sorted(record.metrics.items())
        )
        print(
            f"{record.scenario} ({record.scenario_hash}) "
            f"@ {record.git_sha}: {metrics}"
        )
        records.append(record)
    return records


def perf_main(argv: List[str]) -> int:
    import os

    from repro.perf.regress import compare_latest, render_verdicts
    from repro.perf.store import PerfStore

    args = make_perf_parser().parse_args(argv)
    if args.command == "run":
        store = PerfStore(args.history) if args.history else None
        _perf_measure(args, store)
        if args.history:
            print(f"history appended to {args.history}")
        return 0
    if args.command == "record":
        exists = os.path.exists(args.baseline)
        if exists and os.environ.get("REPRO_UPDATE_BASELINE") != "1":
            raise SystemExit(
                f"{args.baseline} already exists; set "
                "REPRO_UPDATE_BASELINE=1 to append a refreshed baseline"
            )
        _perf_measure(args, PerfStore(args.baseline))
        print(f"baseline appended to {args.baseline}")
        return 0
    if args.command == "compare":
        current = PerfStore(args.history).load()
        baseline = PerfStore(args.baseline).load()
        if not current:
            raise SystemExit(f"no records in {args.history}")
        verdicts = compare_latest(
            current,
            baseline,
            metrics=tuple(args.metrics),
            tolerance=args.tolerance,
            window=args.window,
            ignore_machine=args.ignore_machine,
        )
        print(render_verdicts(verdicts))
        return 1 if any(v.failed for v in verdicts) else 0
    if args.command == "report":
        from repro.perf.report import render_perf_html

        records = []
        for path in args.history:
            records.extend(PerfStore(path).load())
        verdicts = None
        if args.baseline:
            verdicts = compare_latest(
                records, PerfStore(args.baseline).load()
            )
        if args.html_out:
            document = render_perf_html(
                records, verdicts=verdicts, title=args.title
            )
            parent = os.path.dirname(args.html_out)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(args.html_out, "w", encoding="utf-8") as fh:
                fh.write(document)
            print(
                f"perf-trend dashboard written to {args.html_out} "
                f"({len(records)} records)"
            )
        else:
            scenarios = {}
            for rec in records:
                scenarios.setdefault(rec.scenario_hash, []).append(rec)
            print(f"{len(records)} records, {len(scenarios)} scenario(s)")
            for group in scenarios.values():
                head, last = group[0], group[-1]
                wall = last.metrics.get("wall_time_s")
                wall_s = f"{wall:.4g}s" if wall is not None else "-"
                print(
                    f"  {head.scenario} ({head.scenario_hash}): "
                    f"{len(group)} record(s), last wall_time_s={wall_s} "
                    f"@ {last.git_sha}"
                )
            if verdicts:
                print(render_verdicts(verdicts))
        return 0
    raise AssertionError(args.command)  # pragma: no cover


def _campaign_spec_from_args(args: argparse.Namespace):
    from repro.campaign.spec import CampaignSpec

    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as fh:
            return CampaignSpec.from_dict(json.load(fh))
    mechanisms: List[Optional[str]] = []
    for name in args.mechanisms:
        if name in ("all", "all+baseline"):
            if name == "all+baseline":
                mechanisms.append(None)
            mechanisms.extend(m.name for m in ALL_MECHANISMS)
        elif name.lower() == "baseline":
            mechanisms.append(None)
        else:
            mechanisms.append(Mechanism.parse(name).name)
    seeds = (
        args.seeds
        if args.seeds
        else [args.seed + i for i in range(args.traces)]
    )
    trace_file = tuple(args.trace_file) if args.trace_file else (None,)
    trace_options = (
        {"cores_per_node": args.cores_per_node}
        if args.trace_file and args.cores_per_node
        else {}
    )
    return CampaignSpec(
        name=args.name,
        days=tuple(args.days),
        target_load=tuple(args.load),
        system_size=tuple(args.nodes),
        notice_mix=tuple(args.mixes),
        mechanism=tuple(mechanisms),
        backfill_mode=tuple(args.backfill),
        checkpoint_multiplier=tuple(args.ckpt_multipliers),
        failure_mtbf_days=tuple(args.failure_mtbf_days),
        seeds=tuple(seeds),
        trace_file=trace_file,
        trace_options=trace_options,
        policy=tuple(args.policies) if args.policies else (None,),
        policy_params=_parse_policy_params(args.policy_params),
    )


def _parse_policy_params(pairs: Optional[List[str]]) -> dict:
    """``POLICY.KNOB=VALUE`` pairs → the per-policy params mapping the
    campaign spec expects (values JSON-coerced like ``--filter``)."""
    out: dict = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        policy, dot, knob = key.partition(".")
        if not sep or not dot or not policy or not knob:
            raise SystemExit(
                f"--policy-params expects POLICY.KNOB=VALUE pairs "
                f"(e.g. score.wait_weight=2), got {pair!r}"
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        out.setdefault(policy, {})[knob] = value
    return out


def _parse_filters(pairs: Optional[List[str]]) -> Optional[dict]:
    """``KEY=VALUE`` pairs → a config-matching dict (values JSON-coerced,
    so ``seed=2`` matches the integer and ``mechanism=baseline`` maps to
    the stored ``None``)."""
    if not pairs:
        return None
    out = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"--filter expects KEY=VALUE pairs, got {pair!r}"
            )
        if key == "mechanism" and raw == "baseline":
            out[key] = None
            continue
        try:
            out[key] = json.loads(raw)
        except json.JSONDecodeError:
            out[key] = raw
    return out


def _enable_obs_if(trace_out: Optional[str]):
    """Switch the process-global instrumentation on when ``--trace`` was
    given; returns the live :class:`~repro.obs.Observability` or None."""
    if not trace_out:
        return None
    from repro.obs import enable

    return enable()


def campaign_main(argv: List[str]) -> int:
    from repro.campaign import (
        DEFAULT_GROUP_BY,
        DEFAULT_METRICS,
        THROUGHPUT_METRICS,
        diff_text,
        load_campaign,
        report_text,
        run_campaign,
    )

    args = make_campaign_parser().parse_args(argv)
    if args.command == "run":
        spec = _campaign_spec_from_args(args)
        obs = _enable_obs_if(getattr(args, "trace_out", None))
        result = run_campaign(
            spec,
            directory=args.directory,
            workers=args.workers,
            retry_failed=args.retry_failed,
            retry_filter=_parse_filters(args.filters),
            allow_spec_update=args.grow,
            progress=print,
            log_dir=args.log_decisions,
            batch_size=args.batch_size,
            max_inflight=args.max_inflight,
            stream=not args.no_stream,
        )
        print(
            f"campaign {spec.name!r}: {result.n_total} cells — "
            f"{result.n_cached} cached, {result.n_ran} ran, "
            f"{result.n_failed} failed"
        )
        if args.directory:
            print(f"results stored in {args.directory}")
        if obs is not None:
            from repro.obs.export import write_trace

            write_trace(args.trace_out, obs, process_name="campaign-run")
            print(f"trace written to {args.trace_out}")
        return 1 if result.n_failed else 0
    if args.command == "fleet":
        from repro.campaign.distrib import (
            LocalSubprocessBackend,
            SSHBackend,
            run_fleet,
        )

        spec = _campaign_spec_from_args(args)
        if args.ssh_hosts:
            backend = SSHBackend(
                args.ssh_hosts,
                python=args.remote_python,
                remote_dir=args.remote_dir,
                pythonpath=args.remote_pythonpath,
            )
        else:
            backend = LocalSubprocessBackend(workers=args.workers)
        obs = _enable_obs_if(getattr(args, "trace_out", None))
        fleet = run_fleet(
            spec,
            directory=args.directory,
            backend=backend,
            ttl_s=args.ttl,
            poll_s=args.poll,
            allow_spec_update=args.grow,
            progress=print,
            trace=obs is not None,
            claim_batch=args.claim_batch,
        )
        result = fleet.run
        print(
            f"campaign {spec.name!r}: {result.n_total} cells — "
            f"{result.n_cached} cached, {result.n_ran} ran, "
            f"{result.n_failed} failed; merged into {args.directory}"
        )
        if obs is not None:
            import glob as _glob
            from pathlib import Path

            from repro.campaign.distrib.backend import TRACES_DIR
            from repro.obs.export import (
                load_trace,
                merge_trace_data,
                trace_data,
                write_trace_data,
            )

            docs = [trace_data(obs, process_name="fleet-launcher")]
            worker_traces = sorted(
                _glob.glob(
                    str(Path(args.directory) / TRACES_DIR / "*.trace.json")
                )
            )
            docs.extend(load_trace(p) for p in worker_traces)
            write_trace_data(args.trace_out, merge_trace_data(docs))
            print(
                f"trace written to {args.trace_out} "
                f"({len(worker_traces)} worker trace(s) merged in)"
            )
        return 0 if fleet.ok else 1
    if args.command == "worker":
        from repro.campaign.distrib import run_worker

        obs = _enable_obs_if(getattr(args, "trace_out", None))
        summary = run_worker(
            args.directory,
            shard=args.shard,
            ttl_s=args.ttl,
            poll_s=args.poll,
            max_cells=args.max_cells,
            wait=not args.no_wait,
            progress=print,
            claim_batch=args.claim_batch,
        )
        if obs is not None:
            from repro.obs.export import write_trace

            write_trace(
                args.trace_out, obs,
                process_name=f"worker-{args.shard}",
            )
        print(
            f"worker {summary.owner} shard={summary.shard}: "
            f"{summary.n_executed} cells executed "
            f"({summary.n_failed} failed) in {summary.elapsed_s:.1f}s"
        )
        # exit 1 on failed cells, matching 'campaign run' — batch
        # schedulers and the fleet launcher key retries off this
        return 1 if summary.n_failed else 0
    if args.command == "merge":
        from repro.campaign.distrib import merge_shards

        merge_shards(
            args.directory,
            prune_leases=not args.keep_leases,
            progress=print,
        )
        return 0
    if args.command == "gc":
        from repro.campaign.store import ResultStore

        stats = ResultStore(args.directory).compact(
            drop_errors=args.drop_errors
        )
        print(
            f"gc {args.directory}: kept {stats.n_kept} records, dropped "
            f"{stats.n_superseded} superseded + "
            f"{stats.n_errors_dropped} errors"
        )
        return 0
    if args.command == "status":
        from repro.campaign.progress import status_report, watch_status

        if args.watch:
            return watch_status(
                args.directory,
                interval_s=args.interval,
                frames=args.frames,
                window_s=args.window,
                clear=sys.stdout.isatty(),
            )
        print(status_report(args.directory))
        return 0
    if args.command == "report":
        spec_dict, records = load_campaign(args.directory)
        by = tuple(args.by) if args.by else DEFAULT_GROUP_BY
        metrics = tuple(args.metrics) if args.metrics else DEFAULT_METRICS
        # 'throughput' expands to the simulator-performance columns
        # (wall time, events, executed/skipped scheduling passes)
        metrics = tuple(
            m2
            for m in metrics
            for m2 in (THROUGHPUT_METRICS if m == "throughput" else (m,))
        )
        other = None
        if args.diff:
            _, other = load_campaign(args.diff)
            print(
                diff_text(
                    records,
                    other,
                    metrics=metrics,
                    a_name=args.directory,
                    b_name=args.diff,
                )
            )
        else:
            print(report_text(records, by=by, metrics=metrics))
        if args.html_out:
            from repro.campaign.html import render_campaign_html

            trace_doc = None
            if args.trace_in:
                from repro.obs.export import load_trace

                trace_doc = load_trace(args.trace_in)
            document = render_campaign_html(
                records,
                spec_dict=spec_dict,
                by=by,
                metrics=metrics,
                x=args.chart_x,
                diff_records=other,
                a_name=args.directory,
                b_name=args.diff or "B",
                trace_doc=trace_doc,
            )
            with open(args.html_out, "w", encoding="utf-8") as fh:
                fh.write(document)
            print(f"HTML report written to {args.html_out}")
            if args.open_html:
                import webbrowser
                from pathlib import Path

                webbrowser.open(Path(args.html_out).resolve().as_uri())
        elif args.open_html:
            raise SystemExit("--open requires --html FILE")
        elif args.trace_in:
            raise SystemExit("--trace requires --html FILE")
        return 0
    raise AssertionError(args.command)  # pragma: no cover


def obs_main(argv: List[str]) -> int:
    from repro.obs.export import (
        events_from_schedlog,
        load_trace,
        render_summary,
        write_trace_data,
    )

    args = make_obs_parser().parse_args(argv)
    if args.command == "summary":
        print(render_summary(load_trace(args.trace), top=args.top))
        return 0
    if args.command == "from-decisions":
        from repro.sim.schedlog import iter_from_file

        events: List[dict] = []
        for path in args.logs:
            events.extend(events_from_schedlog(iter_from_file(path)))
        write_trace_data(
            args.out,
            {
                "traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {},
            },
        )
        print(
            f"trace written to {args.out} "
            f"({len(events)} events from {len(args.logs)} log(s))"
        )
        return 0
    raise AssertionError(args.command)  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # piping into `head` closes stdout early; exit quietly instead of
        # tracebacking (os.devnull dance silences interpreter shutdown too)
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "obs":
        return obs_main(argv[1:])
    if argv and argv[0] == "perf":
        return perf_main(argv[1:])
    args = make_parser().parse_args(argv)
    if args.exhibit == "table3":
        out = figures.table3_mixes()
        print(out["text"])
        _write_exhibit_html(args, out)
        return 0
    config = _build_config(args)
    if args.exhibit == "table1":
        out = figures.table1_workload(config)
    elif args.exhibit == "table2":
        out = figures.table2_baseline(config)
    elif args.exhibit == "fig3":
        out = figures.fig3_size_mix(config)
    elif args.exhibit == "fig4":
        out = figures.fig4_type_mix(config)
    elif args.exhibit == "fig5":
        out = figures.fig5_burstiness(config)
    elif args.exhibit == "fig6":
        out = figures.fig6_mechanisms(config)
    elif args.exhibit == "fig7":
        out = figures.fig7_checkpointing(config, multipliers=args.multipliers)
    elif args.exhibit == "compare":
        out = figures.headline_comparison(config)
    else:  # pragma: no cover - argparse guards this
        raise AssertionError(args.exhibit)
    print(out["text"])
    _write_exhibit_html(args, out)
    return 0


def _write_exhibit_html(args: argparse.Namespace, out: dict) -> None:
    """Honor ``--html FILE`` for an exhibit driver's result dict."""
    if not getattr(args, "html_out", None):
        return
    from repro.campaign.html import render_exhibit_html

    document = render_exhibit_html(
        f"repro-hybrid {args.exhibit}",
        charts=out.get("charts", ()),
        text=out.get("text"),
    )
    with open(args.html_out, "w", encoding="utf-8") as fh:
        fh.write(document)
    print(f"HTML exhibit written to {args.html_out}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
