"""Command-line front end: ``repro-hybrid <exhibit> [options]``.

Examples::

    repro-hybrid table2 --days 28 --traces 3
    repro-hybrid fig6 --days 21 --traces 2 --workers 4
    repro-hybrid fig7 --multipliers 0.5 1 2
    repro-hybrid compare --mechanisms "CUA&SPAA" "N&PAA"
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.experiments.config import ExperimentConfig
from repro.experiments import figures
from repro.sim.config import SimConfig
from repro.sim.failures import FailureModel
from repro.util.timeconst import DAY
from repro.workload.spec import NOTICE_MIXES, theta_spec


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    spec = theta_spec(
        days=args.days,
        target_load=args.load,
        system_size=args.nodes,
        notice_mix=NOTICE_MIXES[args.mix],
        ondemand_noshow_frac=args.noshow_frac,
    )
    failures = (
        FailureModel(enabled=True, node_mtbf_s=args.failure_mtbf_days * DAY)
        if args.failure_mtbf_days
        else FailureModel.disabled()
    )
    sim = SimConfig(
        system_size=args.nodes,
        backfill_mode=args.backfill,
        failures=failures,
    )
    mechanisms: List[Mechanism] = (
        [Mechanism.parse(m) for m in args.mechanisms]
        if getattr(args, "mechanisms", None)
        else list(ALL_MECHANISMS)
    )
    return ExperimentConfig(
        spec=spec,
        sim=sim,
        mechanisms=mechanisms,
        n_traces=args.traces,
        base_seed=args.seed,
        workers=args.workers,
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hybrid",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exhibit",
        choices=[
            "table1",
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "compare",
        ],
        help="which exhibit to regenerate",
    )
    parser.add_argument("--days", type=float, default=28.0, help="trace horizon")
    parser.add_argument("--nodes", type=int, default=4392, help="system size")
    parser.add_argument("--load", type=float, default=0.82, help="offered load")
    parser.add_argument("--traces", type=int, default=3, help="trace replicas")
    parser.add_argument("--seed", type=int, default=2022, help="base seed")
    parser.add_argument("--workers", type=int, default=1, help="processes")
    parser.add_argument(
        "--mix", choices=sorted(NOTICE_MIXES), default="W5", help="notice mix"
    )
    parser.add_argument(
        "--mechanisms",
        nargs="*",
        default=None,
        help='mechanism names, e.g. "CUA&SPAA" (default: all six)',
    )
    parser.add_argument(
        "--multipliers",
        nargs="*",
        type=float,
        default=[0.5, 1.0, 2.0],
        help="fig7 checkpoint interval multipliers",
    )
    parser.add_argument(
        "--backfill",
        choices=["easy", "conservative"],
        default="easy",
        help="backfilling flavour (paper: easy)",
    )
    parser.add_argument(
        "--noshow-frac",
        type=float,
        default=0.0,
        help="fraction of noticed on-demand jobs that never arrive",
    )
    parser.add_argument(
        "--failure-mtbf-days",
        type=float,
        default=0.0,
        help="per-node MTBF in days for failure injection (0 = off)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    if args.exhibit == "table3":
        print(figures.table3_mixes()["text"])
        return 0
    config = _build_config(args)
    if args.exhibit == "table1":
        out = figures.table1_workload(config)
    elif args.exhibit == "table2":
        out = figures.table2_baseline(config)
    elif args.exhibit == "fig3":
        out = figures.fig3_size_mix(config)
    elif args.exhibit == "fig4":
        out = figures.fig4_type_mix(config)
    elif args.exhibit == "fig5":
        out = figures.fig5_burstiness(config)
    elif args.exhibit == "fig6":
        out = figures.fig6_mechanisms(config)
    elif args.exhibit == "fig7":
        out = figures.fig7_checkpointing(config, multipliers=args.multipliers)
    elif args.exhibit == "compare":
        out = figures.headline_comparison(config)
    else:  # pragma: no cover - argparse guards this
        raise AssertionError(args.exhibit)
    print(out["text"])
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
