"""Experiment-level configuration.

One :class:`ExperimentConfig` describes a full evaluation campaign: the
workload spec, the simulator knobs, which mechanisms to compare, how many
random trace replicas to average ("we repeat the same experiment on ten
randomly generated traces and the results ... are averaged"), and how to
fan the runs out across processes.

The paper runs one-year traces; the default here is a four-week horizon so
the full Fig. 6 grid regenerates in minutes on a laptop — pass
``days=365`` for the paper-scale run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.sim.config import SimConfig
from repro.sim.failures import FailureModel
from repro.util.errors import ConfigurationError
from repro.util.timeconst import DAY
from repro.workload.spec import (
    NOTICE_MIXES,
    NoticeMix,
    WorkloadSpec,
    theta_spec,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaign.spec import CampaignSpec


@dataclass(frozen=True)
class ExperimentConfig:
    """A full campaign description."""

    spec: WorkloadSpec = field(default_factory=lambda: theta_spec(days=28))
    sim: SimConfig = field(default_factory=SimConfig)
    mechanisms: List[Mechanism] = field(
        default_factory=lambda: list(ALL_MECHANISMS)
    )
    #: number of random trace replicas averaged per cell
    n_traces: int = 3
    base_seed: int = 2022
    #: worker processes for the grid (1 = serial, deterministic order)
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_traces <= 0:
            raise ConfigurationError("n_traces must be positive")
        if self.workers <= 0:
            raise ConfigurationError("workers must be positive")
        if self.spec.system_size != self.sim.system_size:
            raise ConfigurationError(
                f"workload system_size ({self.spec.system_size}) != simulator "
                f"system_size ({self.sim.system_size})"
            )

    def seeds(self) -> List[int]:
        return [self.base_seed + i for i in range(self.n_traces)]

    def with_spec(self, spec: WorkloadSpec) -> "ExperimentConfig":
        return replace(self, spec=spec)

    def with_sim(self, sim: SimConfig) -> "ExperimentConfig":
        return replace(self, sim=sim)

    def to_campaign_spec(
        self,
        name: str,
        mixes: Optional[Sequence[NoticeMix]] = None,
        include_baseline: bool = False,
        kind: str = "sim",
    ) -> "CampaignSpec":
        """Translate this one-shot config into a declarative campaign.

        The campaign axes capture (days, load, system size, mix,
        mechanism, backfill, checkpoint multiplier, failure MTBF, seed);
        any *other* non-default knob of the workload spec or simulator
        is preserved in the campaign's override dicts, so the expanded
        cells reproduce this config exactly — and hash differently from
        campaigns with different knobs.
        """
        from repro.campaign.spec import CampaignSpec

        mix_values = tuple(
            _mix_value(m) for m in (mixes or [self.spec.notice_mix])
        )
        mechanisms: List[Optional[str]] = [m.name for m in self.mechanisms]
        if include_baseline:
            mechanisms = [None, *mechanisms]
        failures = self.sim.failures
        mtbf_days = failures.node_mtbf_s / DAY if failures.enabled else 0.0
        return CampaignSpec(
            name=name,
            days=(self.spec.days,),
            target_load=(self.spec.target_load,),
            system_size=(self.spec.system_size,),
            notice_mix=mix_values,
            mechanism=tuple(mechanisms),
            backfill_mode=(self.sim.backfill_mode,),
            checkpoint_multiplier=(self.sim.checkpoint.interval_multiplier,),
            failure_mtbf_days=(mtbf_days,),
            seeds=tuple(self.seeds()),
            kind=kind,
            spec_overrides=_spec_overrides(self.spec),
            sim_overrides=_sim_overrides(self.sim),
            policy=(self.sim.policy,),
            policy_params=(
                {self.sim.policy: dict(self.sim.policy_params)}
                if self.sim.policy and self.sim.policy_params
                else {}
            ),
        )

    @staticmethod
    def quick(
        days: float = 10.0,
        n_traces: int = 2,
        system_size: Optional[int] = None,
        **spec_overrides,
    ) -> "ExperimentConfig":
        """A small campaign for tests and examples."""
        if system_size is not None:
            spec_overrides["system_size"] = system_size
        spec = theta_spec(days=days, **spec_overrides)
        sim = SimConfig(system_size=spec.system_size)
        return ExperimentConfig(spec=spec, sim=sim, n_traces=n_traces)


def _mix_value(mix: NoticeMix) -> Union[str, dict]:
    """A Table III mix travels by name; custom mixes embed their dict."""
    if NOTICE_MIXES.get(mix.name) == mix:
        return mix.name
    return mix.to_dict()


def _spec_overrides(spec: WorkloadSpec) -> dict:
    """Non-default workload knobs not already covered by campaign axes."""
    baseline = theta_spec(
        days=spec.days,
        target_load=spec.target_load,
        system_size=spec.system_size,
        notice_mix=spec.notice_mix,
    )
    base_d, spec_d = baseline.to_dict(), spec.to_dict()
    return {k: v for k, v in spec_d.items() if base_d[k] != v}


def _sim_overrides(sim: SimConfig) -> dict:
    """Non-default simulator knobs not already covered by campaign axes."""
    failures = (
        FailureModel(enabled=True, node_mtbf_s=sim.failures.node_mtbf_s)
        if sim.failures.enabled
        else FailureModel.disabled()
    )
    baseline = SimConfig(
        system_size=sim.system_size,
        backfill_mode=sim.backfill_mode,
        checkpoint=CheckpointModel(
            interval_multiplier=sim.checkpoint.interval_multiplier
        ),
        failures=failures,
        # covered by the campaign policy axis, like backfill_mode
        policy=sim.policy,
        policy_params=dict(sim.policy_params),
    )
    out: dict = {}
    for name in sim.__dataclass_fields__:
        base_v, sim_v = getattr(baseline, name), getattr(sim, name)
        if base_v == sim_v:
            continue
        if name == "checkpoint":
            out[name] = dict(sim_v.__dict__)
        elif name == "failures":
            out[name] = dict(sim_v.__dict__)
        else:
            out[name] = sim_v
    return out
