"""Experiment-level configuration.

One :class:`ExperimentConfig` describes a full evaluation campaign: the
workload spec, the simulator knobs, which mechanisms to compare, how many
random trace replicas to average ("we repeat the same experiment on ten
randomly generated traces and the results ... are averaged"), and how to
fan the runs out across processes.

The paper runs one-year traces; the default here is a four-week horizon so
the full Fig. 6 grid regenerates in minutes on a laptop — pass
``days=365`` for the paper-scale run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.sim.config import SimConfig
from repro.util.errors import ConfigurationError
from repro.workload.spec import WorkloadSpec, theta_spec


@dataclass(frozen=True)
class ExperimentConfig:
    """A full campaign description."""

    spec: WorkloadSpec = field(default_factory=lambda: theta_spec(days=28))
    sim: SimConfig = field(default_factory=SimConfig)
    mechanisms: List[Mechanism] = field(
        default_factory=lambda: list(ALL_MECHANISMS)
    )
    #: number of random trace replicas averaged per cell
    n_traces: int = 3
    base_seed: int = 2022
    #: worker processes for the grid (1 = serial, deterministic order)
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_traces <= 0:
            raise ConfigurationError("n_traces must be positive")
        if self.workers <= 0:
            raise ConfigurationError("workers must be positive")
        if self.spec.system_size != self.sim.system_size:
            raise ConfigurationError(
                f"workload system_size ({self.spec.system_size}) != simulator "
                f"system_size ({self.sim.system_size})"
            )

    def seeds(self) -> List[int]:
        return [self.base_seed + i for i in range(self.n_traces)]

    def with_spec(self, spec: WorkloadSpec) -> "ExperimentConfig":
        return replace(self, spec=spec)

    def with_sim(self, sim: SimConfig) -> "ExperimentConfig":
        return replace(self, sim=sim)

    @staticmethod
    def quick(
        days: float = 10.0,
        n_traces: int = 2,
        system_size: Optional[int] = None,
        **spec_overrides,
    ) -> "ExperimentConfig":
        """A small campaign for tests and examples."""
        if system_size is not None:
            spec_overrides["system_size"] = system_size
        spec = theta_spec(days=days, **spec_overrides)
        sim = SimConfig(system_size=spec.system_size)
        return ExperimentConfig(spec=spec, sim=sim, n_traces=n_traces)
