"""Experiment harness: one driver per paper table/figure.

* :mod:`repro.experiments.config` — experiment-level configuration.
* :mod:`repro.experiments.runner` — run (trace seed x mechanism) grids,
  serially or across processes.
* :mod:`repro.experiments.figures` — drivers named after the paper's
  exhibits (``table1``, ``table2``, ``fig3`` ... ``fig7``) returning
  structured results and rendering the same rows/series the paper reports.
* :mod:`repro.experiments.cli` — ``repro-hybrid`` command-line front end.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    run_mechanism_grid,
    run_one,
    run_workload_sweep,
)
from repro.experiments.figures import (
    fig3_size_mix,
    fig4_type_mix,
    fig5_burstiness,
    fig6_mechanisms,
    fig7_checkpointing,
    headline_comparison,
    table1_workload,
    table2_baseline,
    table3_mixes,
)

__all__ = [
    "ExperimentConfig",
    "run_mechanism_grid",
    "run_one",
    "run_workload_sweep",
    "headline_comparison",
    "fig3_size_mix",
    "fig4_type_mix",
    "fig5_burstiness",
    "fig6_mechanisms",
    "fig7_checkpointing",
    "table1_workload",
    "table2_baseline",
    "table3_mixes",
]
