#!/usr/bin/env python
"""Should a user declare their resizable job malleable, or hide it as
rigid?  (Observation 6: the mechanisms make honesty the best policy.)

We generate one Theta-like trace and run it twice under the same
mechanism:

* **honest** — malleable projects declare malleability (the trace as
  generated);
* **defensive** — the same jobs are declared rigid at their full size
  (what users do when shrinking feels like a tax).

If the mechanism is incentive-compatible, the *declared-malleable* runs
should give those very jobs better turnaround: they start earlier
(any size in [min, max] fits a hole), are preempted more cheaply, and are
guaranteed their nodes back when the on-demand borrower finishes.

Run:
    python examples/malleable_incentive.py [--mechanism CUA&SPAA]
"""

import argparse
from statistics import mean

from repro import (
    Job,
    JobType,
    Mechanism,
    SimConfig,
    Simulation,
    clone_jobs,
    generate_trace,
    theta_spec,
)
from repro.metrics.report import format_table
from repro.util.timeconst import HOUR


def as_rigid(job: Job) -> Job:
    """The defensive declaration: same work, fixed at full size."""
    if job.job_type is not JobType.MALLEABLE:
        return job
    return Job(
        job_id=job.job_id,
        job_type=JobType.RIGID,
        submit_time=job.submit_time,
        size=job.size,
        runtime=job.runtime,
        estimate=job.estimate,
        setup_time=job.setup_time,
        project=job.project,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mechanism", default="CUA&SPAA")
    parser.add_argument("--days", type=float, default=10.0)
    parser.add_argument("--seeds", type=int, nargs="*", default=[0, 1, 2])
    args = parser.parse_args()
    mech = Mechanism.parse(args.mechanism)

    honest_turn, defensive_turn = [], []
    for seed in args.seeds:
        trace = generate_trace(theta_spec(days=args.days), seed=seed)
        watched = {j.job_id for j in trace if j.job_type is JobType.MALLEABLE}
        if not watched:
            continue

        honest = Simulation(clone_jobs(trace), SimConfig(), mech).run()
        defensive = Simulation(
            [as_rigid(j) for j in clone_jobs(trace)], SimConfig(), mech
        ).run()

        honest_turn.append(
            mean(j.turnaround for j in honest.jobs if j.job_id in watched)
        )
        defensive_turn.append(
            mean(j.turnaround for j in defensive.jobs if j.job_id in watched)
        )

    rows = [
        [f"seed {s}", h / HOUR, d / HOUR, (d - h) / HOUR]
        for s, h, d in zip(args.seeds, honest_turn, defensive_turn)
    ]
    rows.append(
        [
            "mean",
            mean(honest_turn) / HOUR,
            mean(defensive_turn) / HOUR,
            (mean(defensive_turn) - mean(honest_turn)) / HOUR,
        ]
    )
    print(
        format_table(
            [
                "trace",
                "declared malleable [h]",
                "declared rigid [h]",
                "honesty dividend [h]",
            ],
            rows,
            title=(
                f"Turnaround of the same jobs under {mech.name}, by how "
                "they were declared"
            ),
        )
    )
    gain = mean(defensive_turn) - mean(honest_turn)
    verdict = "pays off" if gain > 0 else "does not pay off on these seeds"
    print(f"\nDeclaring malleability {verdict}: {gain / HOUR:+.2f} h on average.")


if __name__ == "__main__":
    main()
