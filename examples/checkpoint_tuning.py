#!/usr/bin/env python
"""Site-operator view of Fig. 7: how often should rigid jobs checkpoint
when preemption — not failure — is the dominant interruption?

Daly's optimal interval assumes checkpoints only guard against hardware
failures.  On a hybrid machine, rigid jobs are also drained for urgent
on-demand work, so interruptions are far more frequent than the failure
rate — and checkpointing *more* often than Daly pays off (Observation 13).

The script sweeps the checkpoint-interval multiplier (0.25x..4x Daly)
under one mechanism and prints rigid turnaround, lost compute, checkpoint
overhead, and utilization per point.

Run:
    python examples/checkpoint_tuning.py [--mechanism CUP&PAA]
"""

import argparse
from dataclasses import replace

from repro import Mechanism, SimConfig, theta_spec
from repro.experiments.runner import run_mechanism_grid
from repro.metrics.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mechanism", default="CUP&PAA")
    parser.add_argument("--days", type=float, default=10.0)
    parser.add_argument("--traces", type=int, default=2)
    parser.add_argument(
        "--multipliers",
        type=float,
        nargs="*",
        default=[0.25, 0.5, 1.0, 2.0, 4.0],
    )
    args = parser.parse_args()

    mech = Mechanism.parse(args.mechanism)
    spec = theta_spec(days=args.days)
    seeds = list(range(args.traces))
    rows = []
    for mult in args.multipliers:
        sim = SimConfig()
        sim = replace(sim, checkpoint=sim.checkpoint.with_multiplier(mult))
        grid = run_mechanism_grid(spec, [mech], seeds, sim=sim)
        s = grid[mech.name]
        rows.append(
            [
                f"{1 / mult:.0%} of Daly",
                s.avg_turnaround_rigid_h,
                s.lost_compute_frac,
                s.checkpoint_frac,
                s.system_utilization,
            ]
        )
    print(
        format_table(
            [
                "ckpt frequency",
                "rigid turnaround[h]",
                "lost compute",
                "ckpt overhead",
                "utilization",
            ],
            rows,
            title=f"Checkpoint frequency sweep under {mech.name} "
            f"({args.days:g}-day traces, {args.traces} seeds)",
        )
    )
    print(
        "\nReading: moving left to right the interval grows; lost compute\n"
        "(rolled back at preemptions) rises while checkpoint overhead\n"
        "falls — the paper's Observation 13 says the sweet spot sits at\n"
        "checkpointing MORE often than Daly's failure-only optimum."
    )


if __name__ == "__main__":
    main()
