#!/usr/bin/env python
"""Share a campaign as one self-contained HTML file.

Run:
    python examples/campaign_report.py [--dir runs/report-demo] [--days 2]

Runs a tiny (mechanism x seed) grid through the campaign engine (cells
are cached — re-running this script is instant), renders
``report.html`` next to the campaign directory with pivot tables,
inline-SVG charts, and any captured errors, then renders a second grid
with conservative backfilling and a diff report between the two.  Both
files open offline in any browser: no matplotlib, no JS CDNs.

The CLI equivalent:
    repro-hybrid campaign report --dir runs/report-demo/easy \\
        --html report.html --open
"""

import argparse
import pathlib

from repro.campaign import (
    CampaignSpec,
    load_campaign,
    render_campaign_html,
    run_campaign,
)


def grid(name: str, days: float, backfill: str) -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": name,
            "days": days,
            "target_load": 0.6,
            "system_size": 512,
            "mechanism": [None, "N&PAA", "CUA&SPAA"],
            "backfill_mode": backfill,
            "seeds": [1, 2],
        }
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="runs/report-demo")
    parser.add_argument("--days", type=float, default=2.0)
    args = parser.parse_args()
    base = pathlib.Path(args.dir)

    # 1. Two cached, resumable grids: EASY vs conservative backfilling.
    for name, backfill in (("easy", "easy"), ("cons", "conservative")):
        result = run_campaign(
            grid(name, args.days, backfill),
            directory=str(base / name),
            progress=print,
        )
        print(
            f"{name}: {result.n_total} cells "
            f"({result.n_cached} cached, {result.n_ran} ran)\n"
        )

    # 2. One self-contained report per grid + a diff dashboard.
    spec, records = load_campaign(str(base / "easy"))
    _, other = load_campaign(str(base / "cons"))
    report = base / "report.html"
    report.write_text(
        render_campaign_html(
            records,
            spec_dict=spec,
            by=("mechanism",),
            x="mechanism",
            diff_records=other,
            a_name="easy backfilling",
            b_name="conservative backfilling",
        ),
        encoding="utf-8",
    )
    print(f"self-contained report written to {report}")
    print("open it in any browser — it works offline and attaches to email")


if __name__ == "__main__":
    main()
