#!/usr/bin/env python
"""Scenario: an experimental facility bursts urgent analysis onto an HPC
machine that is busy with simulation campaigns.

This is the motivating workload of the paper's introduction: beamline /
detector experiments produce data that must be analysed *now* (the
on-demand class), while the machine's bread-and-butter tenants are rigid
simulation jobs and malleable high-throughput campaigns.

The script builds that day explicitly — a packed machine, then a burst of
eight on-demand requests announced ~20 minutes ahead — and replays it
under all six mechanisms, reporting:

* how long each urgent job waited,
* what the burst did to the simulations (preempted? how much compute was
  rolled back?),
* what it did to the throughput campaign (shrunk? by how much?).

Run:
    python examples/urgent_analytics.py
"""

from repro import ALL_MECHANISMS, Job, JobType, NoticeClass, SimConfig, Simulation
from repro.jobs.checkpoint import CheckpointModel
from repro.metrics.breakdown import utilization_sparkline
from repro.metrics.report import format_table
from repro.util.timeconst import HOUR, MINUTE
from repro.workload.trace import clone_jobs

SYSTEM = 1024


def build_day() -> list:
    """A packed machine plus one burst of urgent analysis jobs."""
    jobs = []
    # Two large rigid simulation campaigns (the machine's main tenants).
    jobs.append(
        Job(job_id=0, job_type=JobType.RIGID, submit_time=0.0, size=512,
            runtime=20 * HOUR, estimate=24 * HOUR, setup_time=20 * MINUTE)
    )
    jobs.append(
        Job(job_id=1, job_type=JobType.RIGID, submit_time=0.0, size=256,
            runtime=16 * HOUR, estimate=20 * HOUR, setup_time=15 * MINUTE)
    )
    # A malleable high-throughput campaign soaking up the rest.
    jobs.append(
        Job(job_id=2, job_type=JobType.MALLEABLE, submit_time=0.0, size=256,
            min_size=52, runtime=12 * HOUR, estimate=15 * HOUR,
            setup_time=5 * MINUTE)
    )
    # The experiment finishes a run at ~10:00 and fires 8 urgent analysis
    # jobs over twenty minutes, each announced ~20 minutes in advance.
    base = 10 * HOUR
    for i in range(8):
        estimated = base + i * 150.0
        jobs.append(
            Job(
                job_id=3 + i,
                job_type=JobType.ONDEMAND,
                submit_time=estimated,
                size=96,
                runtime=40 * MINUTE,
                estimate=1 * HOUR,
                notice_class=NoticeClass.ACCURATE,
                notice_time=estimated - 20 * MINUTE,
                estimated_arrival=estimated,
            )
        )
    return jobs


def main() -> None:
    trace = build_day()
    config = SimConfig(
        system_size=SYSTEM,
        checkpoint=CheckpointModel(node_mtbf_s=5 * 365 * 24 * 3600.0),
    )
    rows = []
    sparklines = []
    for mech in ALL_MECHANISMS:
        result = Simulation(clone_jobs(trace), config, mech).run()
        sparklines.append((mech.name, utilization_sparkline(result, width=60)))
        jobs = {j.job_id: j for j in result.jobs}
        urgent = [jobs[i] for i in range(3, 11)]
        sims = [jobs[0], jobs[1]]
        campaign = jobs[2]
        rows.append(
            [
                mech.name,
                max(j.start_delay for j in urgent),
                sum(j.stats.preemptions for j in sims),
                sum(j.stats.lost_node_seconds for j in sims) / HOUR,
                campaign.stats.shrinks,
                campaign.stats.preemptions,
                campaign.turnaround / HOUR,
            ]
        )
    print(
        format_table(
            [
                "mechanism",
                "worst urgent delay[s]",
                "sim preempts",
                "sim lost[node-h]",
                "htc shrinks",
                "htc preempts",
                "htc turnaround[h]",
            ],
            rows,
            title="Urgent analysis burst on a busy 1024-node machine",
        )
    )
    print("\nMachine usage over the day (one glyph per ~25 min, '@' = full):")
    for name, line in sparklines:
        print(f"  {name:<9} |{line}|")
    print(
        "\nReading: SPAA variants shield the rigid simulations by shrinking\n"
        "the throughput campaign instead; CUA/CUP variants prepare nodes\n"
        "during the 20-minute notice so the burst preempts less in the\n"
        "first place."
    )


if __name__ == "__main__":
    main()
