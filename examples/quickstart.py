#!/usr/bin/env python
"""Quickstart: generate a Theta-like trace, run the baseline and one
hybrid mechanism, and compare the paper's four metrics.

Run:
    python examples/quickstart.py [--days 7] [--seed 0]

What you should see: the mechanism pushes the on-demand instant start
rate from the baseline's ~20-30% to ~100%, at a small turnaround cost for
rigid jobs — the headline trade-off of the paper.
"""

import argparse

from repro import (
    Mechanism,
    SimConfig,
    Simulation,
    clone_jobs,
    generate_trace,
    summarize,
    theta_spec,
)
from repro.metrics.report import format_summary_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=7.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mechanism", default="CUA&SPAA")
    args = parser.parse_args()

    # 1. A synthetic workload calibrated to Theta's published statistics.
    spec = theta_spec(days=args.days)
    trace = generate_trace(spec, seed=args.seed)
    ods = sum(1 for j in trace if j.is_ondemand)
    print(
        f"trace: {len(trace)} jobs over {args.days:g} days "
        f"({ods} on-demand) on {spec.system_size} nodes\n"
    )

    # 2. Baseline: plain FCFS + EASY backfilling, no special treatment.
    baseline = Simulation(clone_jobs(trace), SimConfig(), mechanism=None).run()

    # 3. One of the six hybrid mechanisms (advance-notice & arrival pair).
    mech = Mechanism.parse(args.mechanism)
    hybrid = Simulation(clone_jobs(trace), SimConfig(), mechanism=mech).run()

    # 4. The paper's metrics, side by side.
    print(
        format_summary_rows(
            [summarize(baseline), summarize(hybrid)],
            title=f"baseline vs {mech.name} (seed {args.seed})",
        )
    )
    b, h = summarize(baseline), summarize(hybrid)
    print(
        f"\non-demand instant start: {b.instant_start_rate:.1%} -> "
        f"{h.instant_start_rate:.1%}"
    )
    print(
        f"mean on-demand start delay: {b.avg_ondemand_delay_s:,.0f}s -> "
        f"{h.avg_ondemand_delay_s:,.0f}s"
    )


if __name__ == "__main__":
    main()
