"""Legacy setuptools shim.

All metadata lives in pyproject.toml ([project] table); this file exists
only so `pip install -e .` works on environments without the `wheel`
package (pip then uses the legacy `setup.py develop` editable path).
"""

from setuptools import setup

setup()
